"""Series generators for every evaluation figure of the paper.

Each ``figNN_*`` function returns plain Python/NumPy data structures (the
series a plot of that figure would show); the benchmark harness prints them
and EXPERIMENTS.md records the comparison against the published figures.

Since the experiment-engine refactor every generator is a thin wrapper
around :mod:`repro.exp`: a *grid declaration* (the sweep's cells as pure
data), a run through the engine (serial by default; process-parallel with
``workers=N``/``REPRO_EXP_WORKERS``; content-cached when a cache is
configured), and a *post-processing* step reassembling the figure
structure from the cell results.  The cell kernels are module-level
functions below, addressable by import path from worker processes; each
receives an explicit integer seed, so parallel and serial runs are
bit-identical.

Figures covered: 7 (job-size CDF), 8 (allocation utilization), 9 (upper
fat-tree-level traffic), 10 (utilization under failures), 11 (alltoall
bandwidth vs message size), 12 (permutation bandwidth distribution),
13/17 (allreduce bandwidth vs message size, large/small clusters),
15 (relative cost savings for the DNN workloads), 16 (edge-disjoint
Hamiltonian cycles), and the Section V-B iteration-time table.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..allocation import (
    AllocatorOptions,
    BoardGrid,
    GreedyAllocator,
    alibaba_like_distribution,
    sample_job_mixes,
    upper_level_fraction,
    utilization_under_failures,
)
from ..collectives.cost_models import allreduce_bus_bandwidth
from ..collectives.hamiltonian import disjoint_hamiltonian_cycles
from ..exp import Grid, RunReport, Runner, cell, register_sweep, run_grid
from ..workloads import NetworkProfile, get_workload
from ..workloads.overlap import PORT_BYTES_PER_S
from .bandwidth import measure_cluster_cell, measure_permutation_fractions
from .clusters import cluster_configs

__all__ = [
    "DEFAULT_FRACTIONS",
    "network_profiles",
    "fig7_jobsize_cdf",
    "fig8_utilization",
    "fig9_upper_traffic",
    "fig10_failures",
    "fig11_alltoall_sweep",
    "fig12_permutation",
    "fig13_allreduce_sweep",
    "fig15_cost_savings",
    "fig16_hamiltonian_cycles",
    "dnn_iteration_times",
    "ROUTING_POLICY_TOPOS",
    "ROUTING_POLICIES",
    "routing_policy_sweep",
]


#: Measured bandwidth fractions of the small-cluster configurations
#: (flow-level simulator, 48 sampled phases, 8 paths).  Used as the default
#: network profiles for the workload figures so that they do not need to
#: re-run the flow simulations; refreshed values can be passed explicitly.
DEFAULT_FRACTIONS: Dict[str, Dict[str, float]] = {
    "ft_nonblocking": {"alltoall": 0.89, "allreduce": 1.00, "diameter": 4},
    "ft_tapered50": {"alltoall": 0.48, "allreduce": 1.00, "diameter": 4},
    "ft_tapered75": {"alltoall": 0.24, "allreduce": 1.00, "diameter": 4},
    "dragonfly": {"alltoall": 0.93, "allreduce": 1.00, "diameter": 3},
    "hyperx": {"alltoall": 1.00, "allreduce": 1.00, "diameter": 4},
    "hx2mesh": {"alltoall": 0.25, "allreduce": 1.00, "diameter": 4},
    "hx4mesh": {"alltoall": 0.13, "allreduce": 1.00, "diameter": 8},
    "torus": {"alltoall": 0.058, "allreduce": 1.00, "diameter": 32},
}


def _profile_dict(profile: NetworkProfile) -> Dict[str, object]:
    """Serialise a profile into cell parameters (rebuilt in the worker)."""
    return dataclasses.asdict(profile)


def network_profiles(
    cluster: str = "small",
    *,
    measured: Optional[Dict[str, Dict[str, float]]] = None,
    measure: bool = False,
    num_phases: Optional[int] = 48,
    max_paths: int = 8,
    backend: str = "flow",
    seed: int = 1,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, NetworkProfile]:
    """Network profiles for every topology of the chosen cluster.

    By default the stored :data:`DEFAULT_FRACTIONS` are used; with
    ``measure=True`` the selected network backend is run instead (the
    default flow-level fidelity is slow for the large cluster).  The
    measurements sweep one engine cell per topology -- the same cells
    Table II runs, so a combined figure/table run measures each topology
    once.
    """
    configs = cluster_configs(cluster)
    fractions = dict(DEFAULT_FRACTIONS)
    if measured:
        fractions.update(measured)
    if measure:
        grid = measurement_grid(
            cluster=cluster,
            num_phases=num_phases,
            max_paths=max_paths,
            seed=seed,
            backend=backend,
        )
        report = run_grid(grid, runner=runner, workers=workers)
        measured_now = {
            c.scenario.tags["key"]: {
                "alltoall": c.value["alltoall_fraction"],
                "allreduce": c.value["allreduce_fraction"],
            }
            for c in report
        }
        fractions.update(measured_now)
    profiles: Dict[str, NetworkProfile] = {}
    for config in configs:
        entry = fractions.get(config.key, {"alltoall": 0.5, "allreduce": 1.0})
        profiles[config.key] = NetworkProfile.from_measurements(
            config.label,
            config.family,
            alltoall_fraction=entry["alltoall"],
            allreduce_fraction=entry["allreduce"],
            diameter=config.analytic_diameter,
        )
    return profiles


def measurement_grid(
    *,
    cluster: str = "small",
    num_phases: Optional[int] = 48,
    max_paths: int = 8,
    seed: int = 1,
    backend: str = "flow",
    skip_keys: Sequence[str] = (),
) -> Grid:
    """One :func:`measure_cluster_cell` per topology of a cluster.

    Chunked by topology: all measurements of one topology execute in one
    worker process, where the shared route table is already warm.
    """
    keys = [c.key for c in cluster_configs(cluster) if c.key not in set(skip_keys)]
    grid = Grid(
        measure_cluster_cell,
        common={
            "cluster": cluster,
            "num_phases": num_phases,
            "max_paths": max_paths,
            "seed": seed,
            "backend": backend,
        },
        chunk=lambda p: f"{p['cluster']}/{p['key']}",
    )
    grid.cross("key", keys)
    return grid


# ------------------------------------------------------------------- Figure 7
@cell(version=1)
def fig7_cell(*, cluster_boards: int, num_mixes: int, seed: int):
    """Original and sampled board-weighted job-size CDFs (one cell)."""
    dist = alibaba_like_distribution()
    original = dist.board_weighted_cdf()
    mixes = sample_job_mixes(cluster_boards, num_mixes, seed=seed)
    sizes = np.array([job.num_boards for mix in mixes for job in mix])
    boards = sizes.astype(float)
    order = np.argsort(sizes)
    cum = np.cumsum(boards[order]) / boards.sum()
    sampled: List[List[float]] = []
    last_size = None
    for s, c in zip(sizes[order], cum):
        if last_size is not None and s == last_size:
            sampled[-1] = [int(s), float(c)]
        else:
            sampled.append([int(s), float(c)])
        last_size = s
    return {
        "original": [[int(s), float(c)] for s, c in original],
        "sampled": sampled,
    }


def fig7_grid(*, cluster_boards: int = 4096, num_mixes: int = 200, seed: int = 0) -> Grid:
    return Grid(
        fig7_cell,
        common={"cluster_boards": cluster_boards, "num_mixes": num_mixes, "seed": seed},
    )


def _fig7_post(report: RunReport) -> Dict[str, List[Tuple[int, float]]]:
    data = report.values()[0]
    return {
        key: [(int(s), float(c)) for s, c in points] for key, points in data.items()
    }


def fig7_jobsize_cdf(
    cluster_boards: int = 4096,
    num_mixes: int = 200,
    seed: int = 0,
    *,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Job-size CDFs: the original distribution and the sampled job mixes."""
    grid = fig7_grid(cluster_boards=cluster_boards, num_mixes=num_mixes, seed=seed)
    return _fig7_post(run_grid(grid, runner=runner, workers=workers))


# ------------------------------------------------------------------- Figure 8
FIG8_PRESETS = [
    ("greedy", False),
    ("greedy+transpose", False),
    ("greedy+transpose+aspect", False),
    ("greedy+transpose+aspect+locality", False),
    ("greedy+transpose+aspect", True),
    ("greedy+transpose+aspect+locality", True),
]

FIG8_CLUSTERS = {
    "Small 16x16 Hx2Mesh": (16, 16),
    "Small 8x8 Hx4Mesh": (8, 8),
    "Large 64x64 Hx2Mesh": (64, 64),
    "Large 32x32 Hx4Mesh": (32, 32),
}


@cell(version=1)
def fig8_cell(*, x: int, y: int, preset: str, sort: bool, num_traces: int, seed: int):
    """Utilization of one (cluster, preset) pair over the sampled mixes.

    Every preset of a cluster draws the same mixes (same explicit seed), as
    in the paper: presets differ only in the allocator's decisions.
    """
    mixes = sample_job_mixes(x * y, num_traces, seed=seed, max_job_boards=x * y)
    utils: List[float] = []
    for mix in mixes:
        grid = BoardGrid(x, y)
        allocator = GreedyAllocator(grid, AllocatorOptions.named(preset))
        trace = mix.sorted_by_size() if sort else mix
        utils.append(allocator.allocate_trace(trace).utilization)
    return utils


def fig8_grid(
    *,
    clusters: Optional[Dict[str, Tuple[int, int]]] = None,
    num_traces: int = 50,
    seed: int = 0,
) -> Grid:
    chosen = dict(clusters or FIG8_CLUSTERS)
    grid = Grid(
        fig8_cell,
        common={"num_traces": num_traces, "seed": seed},
        chunk="cluster",
        drop=("cluster", "label"),
    )
    grid.cross("cluster", list(chosen))
    grid.cross(("preset", "sort"), FIG8_PRESETS)
    grid.derive(
        lambda p: {
            "x": chosen[p["cluster"]][0],
            "y": chosen[p["cluster"]][1],
            "label": p["preset"] + ("+sort" if p["sort"] else ""),
        }
    )
    return grid


def _fig8_post(report: RunReport) -> Dict[str, Dict[str, List[float]]]:
    out: Dict[str, Dict[str, List[float]]] = {}
    for c in report:
        out.setdefault(c.scenario.tags["cluster"], {})[c.scenario.tags["label"]] = c.value
    return out


def fig8_utilization(
    *,
    clusters: Optional[Dict[str, Tuple[int, int]]] = None,
    num_traces: int = 50,
    seed: int = 0,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """System utilization distributions per cluster and heuristic combination."""
    grid = fig8_grid(clusters=clusters, num_traces=num_traces, seed=seed)
    return _fig8_post(run_grid(grid, runner=runner, workers=workers))


# ------------------------------------------------------------------- Figure 9
FIG9_CLUSTERS = {
    "Large 64x64 Hx2Mesh": (64, 64, 16),
    "Large 32x32 Hx4Mesh": (32, 32, 32),
}


@cell(version=1)
def fig9_cell(
    *,
    x: int,
    y: int,
    boards_per_leaf: int,
    preset: str,
    sort: bool,
    num_traces: int,
    seed: int,
):
    """Board-weighted upper-level traffic fractions of one preset."""
    mixes = sample_job_mixes(x * y, num_traces, seed=seed, max_job_boards=x * y)
    base = AllocatorOptions.named(preset)
    options = AllocatorOptions(
        transpose=base.transpose,
        aspect_ratio=base.aspect_ratio,
        locality=base.locality,
        boards_per_leaf=boards_per_leaf,
    )
    totals = {"alltoall": 0.0, "allreduce": 0.0}
    weight = 0.0
    for mix in mixes:
        grid = BoardGrid(x, y)
        allocator = GreedyAllocator(grid, options)
        trace = mix.sorted_by_size() if sort else mix
        result = allocator.allocate_trace(trace)
        for submesh in result.placed.values():
            w = submesh.num_boards
            weight += w
            for pattern in ("alltoall", "allreduce"):
                totals[pattern] += w * upper_level_fraction(
                    submesh, boards_per_leaf=boards_per_leaf, pattern=pattern
                )
    return {k: (v / weight if weight else 0.0) for k, v in totals.items()}


def fig9_grid(
    *,
    clusters: Optional[Dict[str, Tuple[int, int, int]]] = None,
    num_traces: int = 20,
    seed: int = 0,
) -> Grid:
    chosen = dict(clusters or FIG9_CLUSTERS)
    grid = Grid(
        fig9_cell,
        common={"num_traces": num_traces, "seed": seed},
        chunk="cluster",
        drop=("cluster", "label"),
    )
    grid.cross("cluster", list(chosen))
    grid.cross(("preset", "sort"), FIG8_PRESETS)
    grid.derive(
        lambda p: {
            "x": chosen[p["cluster"]][0],
            "y": chosen[p["cluster"]][1],
            "boards_per_leaf": chosen[p["cluster"]][2],
            "label": p["preset"] + ("+sort" if p["sort"] else ""),
        }
    )
    return grid


def _fig9_post(report: RunReport) -> Dict[str, Dict[str, Dict[str, float]]]:
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for c in report:
        out.setdefault(c.scenario.tags["cluster"], {})[c.scenario.tags["label"]] = c.value
    return out


def fig9_upper_traffic(
    *,
    clusters: Optional[Dict[str, Tuple[int, int, int]]] = None,
    num_traces: int = 20,
    seed: int = 0,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Mean fraction of traffic crossing the upper fat-tree levels.

    Returns ``{cluster: {preset: {"alltoall": f, "allreduce": f}}}``; the
    fraction is averaged over jobs weighted by their board count.
    """
    grid = fig9_grid(clusters=clusters, num_traces=num_traces, seed=seed)
    return _fig9_post(run_grid(grid, runner=runner, workers=workers))


# ------------------------------------------------------------------ Figure 10
FIG10_CLUSTERS = {
    "Hx2Small": ((16, 16), (0, 10, 20, 30, 40)),
    "Hx4Small": ((8, 8), (0, 10, 20, 30, 40)),
    "Hx2Large": ((64, 64), (0, 25, 50, 75, 100)),
    "Hx4Large": ((32, 32), (0, 25, 50, 75, 100)),
}


@cell(version=1)
def fig10_cell(
    *,
    x: int,
    y: int,
    counts: Sequence[int],
    sort_jobs: bool,
    num_trials: int,
    seed: int,
):
    """Median utilization vs failed-board count for one (cluster, mode)."""
    results = utilization_under_failures(
        x, y, tuple(counts), num_trials=num_trials, sort_jobs=sort_jobs, seed=seed
    )
    return [[r.num_failed, r.median] for r in results]


def fig10_grid(*, clusters=None, num_trials: int = 10, seed: int = 0) -> Grid:
    chosen = dict(clusters or FIG10_CLUSTERS)
    grid = Grid(
        fig10_cell,
        common={"num_trials": num_trials, "seed": seed},
        chunk="cluster",
        drop=("cluster", "label"),
    )
    grid.cross("cluster", list(chosen))
    grid.cross(("sort_jobs", "label"), [(False, "unsorted"), (True, "sorted")])
    grid.derive(
        lambda p: {
            "x": chosen[p["cluster"]][0][0],
            "y": chosen[p["cluster"]][0][1],
            "counts": list(chosen[p["cluster"]][1]),
        }
    )
    return grid


def _fig10_post(report: RunReport) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    out: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for c in report:
        series = [(int(n), float(u)) for n, u in c.value]
        out.setdefault(c.scenario.tags["cluster"], {})[c.scenario.tags["label"]] = series
    return out


def fig10_failures(
    *,
    clusters=None,
    num_trials: int = 10,
    seed: int = 0,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Median utilization of working boards vs number of failed boards."""
    grid = fig10_grid(clusters=clusters, num_trials=num_trials, seed=seed)
    return _fig10_post(run_grid(grid, runner=runner, workers=workers))


# ------------------------------------------------------------------ Figure 11
DEFAULT_MESSAGE_SIZES = tuple(2 ** k for k in range(10, 25, 2))  # 1 KiB .. 16 MiB


@cell(version=1)
def fig11_cell(*, alpha: float, alltoall_bandwidth: float, message_sizes: Sequence[int]):
    """Effective alltoall bandwidth fraction per message size (one topology).

    The balanced-shift alltoall runs ``P - 1`` phases of one block each, so
    the effective per-process bandwidth is
    ``block / (alpha + block / measured_alltoall_bandwidth)`` -- the
    measured large-message fraction is the asymptote, small blocks are
    latency-bound.
    """
    series = []
    for size in message_sizes:
        phase_time = alpha + size / alltoall_bandwidth
        effective = size / phase_time
        series.append([int(size), effective / (4 * PORT_BYTES_PER_S)])
    return series


def fig11_grid(
    *,
    cluster: str = "small",
    message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
    profiles: Optional[Dict[str, NetworkProfile]] = None,
) -> Grid:
    configs = {c.key: c for c in cluster_configs(cluster)}
    chosen = profiles or network_profiles(cluster)
    grid = Grid(
        fig11_cell,
        common={"message_sizes": [int(s) for s in message_sizes]},
        drop=("key", "label"),
    )
    grid.cross("key", list(chosen))
    grid.derive(
        lambda p: {
            "alpha": chosen[p["key"]].alpha,
            "alltoall_bandwidth": chosen[p["key"]].alltoall_bandwidth,
            "label": configs[p["key"]].label,
        }
    )
    return grid


def _fig11_post(report: RunReport) -> Dict[str, List[Tuple[int, float]]]:
    return {
        c.scenario.tags["label"]: [(int(s), float(f)) for s, f in c.value]
        for c in report
    }


def fig11_alltoall_sweep(
    cluster: str = "small",
    *,
    message_sizes: Sequence[int] = DEFAULT_MESSAGE_SIZES,
    profiles: Optional[Dict[str, NetworkProfile]] = None,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Alltoall effective bandwidth (fraction of injection) vs message size.

    ``message_sizes`` are per-peer block sizes (as in the paper's
    microbenchmark); see :func:`fig11_cell` for the model.
    """
    grid = fig11_grid(cluster=cluster, message_sizes=message_sizes, profiles=profiles)
    return _fig11_post(run_grid(grid, runner=runner, workers=workers))


# ------------------------------------------------------------------ Figure 12
@cell(version=1)
def fig12_cell(
    *,
    cluster: str,
    key: str,
    num_permutations: int,
    max_paths: int,
    seed: int,
    backend: str,
    policy: str = "minimal",
):
    """Per-accelerator permutation bandwidth fractions of one topology."""
    config = {c.key: c for c in cluster_configs(cluster)}[key]
    topo = config.build()
    dist = measure_permutation_fractions(
        topo,
        num_permutations=num_permutations,
        max_paths=max_paths,
        seed=seed,
        backend=backend,
        policy=policy,
    )
    return [float(v) for v in dist]


def fig12_grid(
    *,
    cluster: str = "small",
    num_permutations: int = 2,
    max_paths: int = 8,
    skip_keys: Sequence[str] = (),
    seed: int = 0,
    backend: str = "flow",
    policy: str = "minimal",
) -> Grid:
    configs = {c.key: c for c in cluster_configs(cluster)}
    keys = [k for k in configs if k not in set(skip_keys)]
    grid = Grid(
        fig12_cell,
        common={
            "cluster": cluster,
            "num_permutations": num_permutations,
            "max_paths": max_paths,
            "seed": seed,
            "backend": backend,
            "policy": policy,
        },
        chunk=lambda p: f"{p['cluster']}/{p['key']}",
        drop=("label",),
    )
    grid.cross("key", keys)
    grid.derive(lambda p: {"label": configs[p["key"]].label})
    return grid


def _fig12_post(report: RunReport) -> Dict[str, Dict[str, object]]:
    results: Dict[str, Dict[str, object]] = {}
    reference_ratio = None
    configs_by_cluster: Dict[str, Dict[str, object]] = {}
    for c in report:
        cluster = c.scenario.params["cluster"]
        key = c.scenario.params["key"]
        if cluster not in configs_by_cluster:
            configs_by_cluster[cluster] = {cc.key: cc for cc in cluster_configs(cluster)}
        config = configs_by_cluster[cluster][key]
        dist = np.asarray(c.value, dtype=float)
        mean = float(dist.mean())
        cost_per_bw = config.cost.total_millions / max(mean, 1e-9)
        if key == "ft_nonblocking":
            reference_ratio = cost_per_bw
        results[config.label] = {
            "distribution": dist,
            "mean_fraction": mean,
            "cost_per_bandwidth": cost_per_bw,
        }
    if reference_ratio:
        for entry in results.values():
            entry["relative_cost_per_bandwidth"] = (
                entry["cost_per_bandwidth"] / reference_ratio
            )
    return results


def fig12_permutation(
    cluster: str = "small",
    *,
    num_permutations: int = 2,
    max_paths: int = 8,
    skip_keys: Sequence[str] = (),
    seed: int = 0,
    backend: str = "flow",
    policy: str = "minimal",
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, object]]:
    """Per-accelerator bandwidth distribution under random permutation traffic.

    Returns, per topology: the raw distribution (fractions of injection),
    its mean, and the cost per average bandwidth relative to the nonblocking
    fat tree.
    """
    grid = fig12_grid(
        cluster=cluster,
        num_permutations=num_permutations,
        max_paths=max_paths,
        skip_keys=skip_keys,
        seed=seed,
        backend=backend,
        policy=policy,
    )
    return _fig12_post(run_grid(grid, runner=runner, workers=workers))


# ------------------------------------------------------------- Figures 13 / 17
ALLREDUCE_SWEEP_SIZES = tuple(2 ** k for k in range(14, 33, 2))  # 16 KiB .. 4 GiB


@cell(version=1)
def fig13_cell(
    *,
    p: int,
    alpha: float,
    allreduce_busbw: float,
    algorithms: Sequence[str],
    message_sizes: Sequence[int],
):
    """Allreduce bus bandwidth vs message size for one topology's algorithms."""
    beta = 1.0 / (allreduce_busbw * 2.0)  # seconds per byte per NIC
    return {
        alg: [
            [int(size), allreduce_bus_bandwidth(alg, p, size, alpha, beta)]
            for size in message_sizes
        ]
        for alg in algorithms
    }


def fig13_grid(
    *,
    cluster: str = "large",
    message_sizes: Sequence[int] = ALLREDUCE_SWEEP_SIZES,
    algorithms: Sequence[str] = ("rings", "torus"),
    profiles: Optional[Dict[str, NetworkProfile]] = None,
) -> Grid:
    configs = {c.key: c for c in cluster_configs(cluster)}
    chosen = profiles or network_profiles(cluster)
    grid_algorithms = list(algorithms)
    grid = Grid(
        fig13_cell,
        common={"message_sizes": [int(s) for s in message_sizes]},
        drop=("key", "label"),
    )
    grid.cross("key", list(chosen))

    def _derive(p):
        config = configs[p["key"]]
        profile = chosen[p["key"]]
        if config.family in ("hammingmesh", "torus", "hyperx"):
            algs = grid_algorithms
        else:
            algs = ["bidirectional-ring"]
        return {
            "p": config.num_accelerators,
            "alpha": profile.alpha,
            "allreduce_busbw": profile.allreduce_busbw,
            "algorithms": algs,
            "label": config.label,
        }

    grid.derive(_derive)
    return grid


def _fig13_post(report: RunReport) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    return {
        c.scenario.tags["label"]: {
            alg: [(int(s), float(bw)) for s, bw in points]
            for alg, points in c.value.items()
        }
        for c in report
    }


def fig13_allreduce_sweep(
    cluster: str = "large",
    *,
    message_sizes: Sequence[int] = ALLREDUCE_SWEEP_SIZES,
    algorithms: Sequence[str] = ("rings", "torus"),
    profiles: Optional[Dict[str, NetworkProfile]] = None,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Full-system allreduce bus bandwidth vs message size (Figures 13/17).

    On the grid topologies both the dual-ring ("rings") and the 2D-torus
    ("torus") algorithms are evaluated; the switched topologies use the
    standard per-plane ring.  Bandwidths are bytes/s per accelerator.
    """
    grid = fig13_grid(
        cluster=cluster,
        message_sizes=message_sizes,
        algorithms=algorithms,
        profiles=profiles,
    )
    return _fig13_post(run_grid(grid, runner=runner, workers=workers))


def fig17_allreduce_sweep(**kwargs):
    """Small-cluster variant of the allreduce sweep (Figure 17).

    Every keyword (``message_sizes``, ``algorithms``, ``profiles``,
    ``runner``, ``workers``, ...) is passed straight through to
    :func:`fig13_allreduce_sweep`; only the default cluster differs.
    """
    kwargs.setdefault("cluster", "small")
    return fig13_allreduce_sweep(**kwargs)


# ------------------------------------------------------------------ Figure 15
FIG15_WORKLOADS = ["resnet152", "gpt3", "gpt3_moe", "cosmoflow", "dlrm"]
FIG15_BASELINES = [
    "ft_nonblocking",
    "ft_tapered50",
    "ft_tapered75",
    "dragonfly",
    "hyperx",
    "torus",
]


@cell(version=1)
def fig15_cell(*, workload: str, hx_profile: dict, hx_cost: float, baselines: list):
    """Relative cost savings of one HxMesh for one workload.

    ``baselines`` is a list of ``{"label", "cost", "profile"}`` records;
    the saving over topology X is ``(cost_X / cost_Hx) *
    (exposed_comm_X / exposed_comm_Hx)``.
    """
    wl = get_workload(workload)
    hx_time = wl.iteration_time(NetworkProfile(**hx_profile))
    hx_overhead = max(hx_time - wl.compute_time, 1e-9)
    out = {}
    for base in baselines:
        base_time = wl.iteration_time(NetworkProfile(**base["profile"]))
        base_overhead = max(base_time - wl.compute_time, 1e-9)
        out[base["label"]] = (base["cost"] / hx_cost) * (base_overhead / hx_overhead)
    return out


def fig15_grid(
    *,
    cluster: str = "small",
    profiles: Optional[Dict[str, NetworkProfile]] = None,
    workload_names: Sequence[str] = tuple(FIG15_WORKLOADS),
    hx_keys: Sequence[str] = ("hx2mesh", "hx4mesh"),
) -> Grid:
    configs = {c.key: c for c in cluster_configs(cluster)}
    chosen = profiles or network_profiles(cluster)
    baselines = [
        {
            "label": configs[key].label,
            "cost": configs[key].cost.total_millions,
            "profile": _profile_dict(chosen[key]),
        }
        for key in FIG15_BASELINES
    ]
    grid = Grid(fig15_cell, common={"baselines": baselines}, drop=("hx_key", "hx_label"))
    grid.cross("hx_key", list(hx_keys))
    grid.cross("workload", list(workload_names))
    grid.derive(
        lambda p: {
            "hx_profile": _profile_dict(chosen[p["hx_key"]]),
            "hx_cost": configs[p["hx_key"]].cost.total_millions,
            "hx_label": configs[p["hx_key"]].label,
        }
    )
    return grid


def _fig15_post(report: RunReport) -> Dict[str, Dict[str, Dict[str, float]]]:
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for c in report:
        hx_label = c.scenario.tags["hx_label"]
        workload = get_workload(c.scenario.tags["workload"])
        out.setdefault(hx_label, {})[workload.name] = {
            label: float(v) for label, v in c.value.items()
        }
    return out


def fig15_cost_savings(
    *,
    cluster: str = "small",
    profiles: Optional[Dict[str, NetworkProfile]] = None,
    workload_names: Sequence[str] = tuple(FIG15_WORKLOADS),
    hx_keys: Sequence[str] = ("hx2mesh", "hx4mesh"),
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Relative cost savings of HxMesh vs the other topologies (Figure 15).

    Following the paper, the saving of an HxMesh over topology X for a given
    workload is ``(cost_X / cost_Hx) * (exposed_comm_X / exposed_comm_Hx)``:
    the network-cost ratio corrected by the ratio of communication overheads.
    Returns ``{hx_label: {workload: {baseline_label: saving}}}``.
    """
    grid = fig15_grid(
        cluster=cluster,
        profiles=profiles,
        workload_names=workload_names,
        hx_keys=hx_keys,
    )
    return _fig15_post(run_grid(grid, runner=runner, workers=workers))


# ------------------------------------------------------------------ Figure 16
@cell(version=1)
def fig16_cell(*, rows: int, cols: int):
    """The edge-disjoint Hamiltonian cycle pair of one torus shape."""
    red, green = disjoint_hamiltonian_cycles(rows, cols)
    return [
        [[int(r), int(c)] for r, c in red],
        [[int(r), int(c)] for r, c in green],
    ]


def fig16_grid(
    *, shapes: Sequence[Tuple[int, int]] = ((4, 4), (8, 4), (9, 3), (16, 8))
) -> Grid:
    grid = Grid(fig16_cell)
    grid.cross(("rows", "cols"), [tuple(s) for s in shapes])
    return grid


def _fig16_post(report: RunReport):
    out = {}
    for c in report:
        shape = (c.scenario.params["rows"], c.scenario.params["cols"])
        red, green = c.value
        out[shape] = (
            [tuple(point) for point in red],
            [tuple(point) for point in green],
        )
    return out


def fig16_hamiltonian_cycles(
    shapes: Sequence[Tuple[int, int]] = ((4, 4), (8, 4), (9, 3), (16, 8)),
    *,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[Tuple[int, int], Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]]:
    """The example edge-disjoint Hamiltonian cycle pairs of Figure 16."""
    return _fig16_post(run_grid(fig16_grid(shapes=shapes), runner=runner, workers=workers))


# --------------------------------------------------------- Section V-B table
@cell(version=1)
def iteration_time_cell(*, workload: str, profiles: dict):
    """Per-topology iteration times (seconds) of one DNN workload."""
    wl = get_workload(workload)
    return {
        label: wl.iteration_time(NetworkProfile(**profile))
        for label, profile in profiles.items()
    }


def dnn_iteration_times_grid(
    *,
    cluster: str = "small",
    profiles: Optional[Dict[str, NetworkProfile]] = None,
    workload_names: Sequence[str] = tuple(FIG15_WORKLOADS),
) -> Grid:
    configs = cluster_configs(cluster)
    chosen = profiles or network_profiles(cluster)
    labelled = {
        config.label: _profile_dict(chosen[config.key])
        for config in configs
        if config.key in chosen
    }
    grid = Grid(iteration_time_cell, common={"profiles": labelled})
    grid.cross("workload", list(workload_names))
    return grid


def _dnn_iteration_times_post(report: RunReport) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for c in report:
        workload = get_workload(c.scenario.tags["workload"])
        out[workload.name] = {label: float(t) for label, t in c.value.items()}
    return out


def dnn_iteration_times(
    *,
    cluster: str = "small",
    profiles: Optional[Dict[str, NetworkProfile]] = None,
    workload_names: Sequence[str] = tuple(FIG15_WORKLOADS),
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-topology iteration times (seconds) of the Section V-B workloads."""
    grid = dnn_iteration_times_grid(
        cluster=cluster, profiles=profiles, workload_names=workload_names
    )
    return _dnn_iteration_times_post(run_grid(grid, runner=runner, workers=workers))


# ------------------------------------------------- routing-policy study
#: Small per-family instances for the routing-policy study.  The HxMesh is
#: *tapered* (radix-4 trees at 2:1) so its global networks are the scarce
#: resource the Section IV-C minimal-vs-non-minimal discussion is about.
ROUTING_POLICY_TOPOS: Dict[str, str] = {
    "hx4mesh_tapered": "4x4 boards of 4x4, radix-4 trees, 50% tapered",
    "hx2mesh": "4x4 boards of 2x2",
    "torus": "16x16 accelerators",
    "dragonfly": "8 groups x 8 routers x 4 accelerators",
    "hyperx": "8x8 switches x 2 accelerators",
    "fattree_tapered": "256 accelerators, 75% tapered",
}

ROUTING_POLICIES: Tuple[str, ...] = ("minimal", "ecmp", "valiant", "ugal")


#: Built study topologies, memoized per key: the grid chunks its cells by
#: topo_key so all four policy cells of one topology run in one worker, and
#: sharing the topology *object* is what lets `route_table_for`'s weak-keyed
#: memo (and the generic provider's BFS state) carry over between them.
_POLICY_TOPO_MEMO: Dict[str, object] = {}


def _routing_policy_topo(topo_key: str):
    from ..core import build_hammingmesh
    from ..topology import build_dragonfly, build_fat_tree, build_hyperx2d, build_torus2d

    builders = {
        "hx4mesh_tapered": lambda: build_hammingmesh(4, 4, 4, 4, radix=4, global_taper=0.5),
        "hx2mesh": lambda: build_hammingmesh(2, 2, 4, 4),
        "torus": lambda: build_torus2d(8, 8),
        "dragonfly": lambda: build_dragonfly(
            8, routers_per_group=8, endpoints_per_router=4, global_links_per_router=4
        ),
        "hyperx": lambda: build_hyperx2d(8, 8, terminals=2),
        "fattree_tapered": lambda: build_fat_tree(256, taper=0.25),
    }
    try:
        builder = builders[topo_key]
    except KeyError:
        raise ValueError(
            f"unknown routing-policy study topology {topo_key!r}; "
            f"available: {sorted(builders)}"
        ) from None
    topo = _POLICY_TOPO_MEMO.get(topo_key)
    if topo is None:
        topo = _POLICY_TOPO_MEMO[topo_key] = builder()
    return topo


@cell(version=1)
def routing_policy_cell(
    *,
    topo_key: str,
    policy: str,
    max_paths: int = 8,
    num_random: int = 2,
    seed: int = 0,
) -> dict:
    """Worst-case adversarial and random permutation throughput of one
    ``(topology, policy)`` point.

    ``adversarial_*`` is measured on the family's structural worst case
    (:func:`repro.sim.traffic.adversarial_permutation`; fractions over the
    participating destinations, since the HammingMesh adversary is a
    hot-region job that leaves the rest of the machine idle).
    ``random_mean`` is the usual Figure-12-style average over ``num_random``
    random permutations.  The policy name is an ordinary cell parameter, so
    it enters the scenario content hash like any other axis.
    """
    import numpy as np

    from ..sim import adversarial_permutation, get_backend

    topo = _routing_policy_topo(topo_key)
    model = get_backend("flow", topo, max_paths=max_paths, policy=policy)
    adv = adversarial_permutation(topo)
    dsts = np.fromiter((f.dst for f in adv), dtype=np.int64, count=len(adv))
    adv_fractions = model.permutation_sample(adv)[dsts]
    random_fractions = model.permutation_fractions(
        num_permutations=num_random, seed=seed
    )
    return {
        "adversarial_worst": float(adv_fractions.min()),
        "adversarial_mean": float(adv_fractions.mean()),
        "random_mean": float(random_fractions.mean()),
        "adversarial_flows": int(len(adv)),
    }


def routing_policy_grid(
    *,
    topo_keys: Sequence[str] = tuple(ROUTING_POLICY_TOPOS),
    policies: Sequence[str] = ROUTING_POLICIES,
    max_paths: int = 8,
    num_random: int = 2,
    seed: int = 0,
) -> Grid:
    grid = Grid(
        routing_policy_cell,
        common={"max_paths": max_paths, "num_random": num_random, "seed": seed},
        # Chunk by topology so one worker reuses the memoized route tables
        # of all four policies on the same instance.
        chunk=lambda p: p["topo_key"],
    )
    grid.cross("topo_key", list(topo_keys))
    grid.cross("policy", list(policies))
    return grid


def _routing_policy_post(report: RunReport) -> Dict[str, Dict[str, Dict[str, float]]]:
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for c in report:
        params = c.scenario.params
        results.setdefault(params["topo_key"], {})[params["policy"]] = c.value
    return results


def routing_policy_sweep(
    *,
    topo_keys: Sequence[str] = tuple(ROUTING_POLICY_TOPOS),
    policies: Sequence[str] = ROUTING_POLICIES,
    max_paths: int = 8,
    num_random: int = 2,
    seed: int = 0,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Worst-case permutation throughput per routing policy per family.

    Returns ``{topo_key: {policy: {adversarial_worst, adversarial_mean,
    random_mean, adversarial_flows}}}`` — the paper-style study behind the
    Section IV-C minimal-vs-non-minimal discussion: UGAL restores the
    bandwidth minimal routing loses on the structural worst cases
    (recorded in ``BENCH_routing_policies.json``).
    """
    grid = routing_policy_grid(
        topo_keys=topo_keys,
        policies=policies,
        max_paths=max_paths,
        num_random=num_random,
        seed=seed,
    )
    return _routing_policy_post(run_grid(grid, runner=runner, workers=workers))


# ------------------------------------------------------------- named sweeps
register_sweep(
    "fig7",
    build=fig7_grid,
    post=_fig7_post,
    description="Figure 7: job-size CDF of the sampled workload",
    artifact="fig07_jobsize_cdf",
)
register_sweep(
    "fig8",
    build=fig8_grid,
    post=_fig8_post,
    description="Figure 8: allocator utilization per heuristic preset",
    artifact="fig08_utilization",
)
register_sweep(
    "fig9",
    build=fig9_grid,
    post=_fig9_post,
    description="Figure 9: traffic crossing the upper fat-tree levels",
    artifact="fig09_upper_traffic",
)
register_sweep(
    "fig10",
    build=fig10_grid,
    post=_fig10_post,
    description="Figure 10: utilization under board failures",
    artifact="fig10_failures",
)
register_sweep(
    "fig11",
    build=fig11_grid,
    post=_fig11_post,
    description="Figure 11: alltoall bandwidth vs message size",
    artifact="fig11_alltoall",
)
register_sweep(
    "fig12",
    build=fig12_grid,
    post=_fig12_post,
    description="Figure 12: permutation bandwidth distributions",
    artifact="fig12_permutation",
)
register_sweep(
    "fig13",
    build=fig13_grid,
    post=_fig13_post,
    description="Figure 13: large-cluster allreduce bandwidth sweep",
    artifact="fig13_allreduce_large",
)
register_sweep(
    "fig17",
    build=lambda **kw: fig13_grid(**{"cluster": "small", **kw}),
    post=_fig13_post,
    description="Figure 17: small-cluster allreduce bandwidth sweep",
    artifact="fig17_allreduce_small",
)
register_sweep(
    "fig15",
    build=fig15_grid,
    post=_fig15_post,
    description="Figure 15: relative cost savings of HxMesh",
    artifact="fig15_cost_savings",
)
register_sweep(
    "fig16",
    build=fig16_grid,
    post=_fig16_post,
    description="Figure 16: edge-disjoint Hamiltonian cycle pairs",
    artifact="fig16_hamiltonian",
)
register_sweep(
    "sectionVB",
    build=dnn_iteration_times_grid,
    post=_dnn_iteration_times_post,
    description="Section V-B: DNN iteration times per topology",
    artifact="sectionVB_iteration_times",
)
register_sweep(
    "routing_policy_sweep",
    build=routing_policy_grid,
    post=_routing_policy_post,
    description="Section IV-C study: adversarial/random permutation throughput per routing policy",
    artifact="routing_policies",
)
register_sweep(
    "profiles",
    build=measurement_grid,
    post=lambda report: {
        c.scenario.tags["key"]: c.value for c in report
    },
    description="Measured alltoall/allreduce fractions per topology",
    artifact="network_profiles",
)
