"""Cluster lifetime experiments (beyond the paper's static Figures 8/10).

These helpers run the event-driven :mod:`repro.cluster` simulator across
allocator presets, scheduling policies, or failure intensities and return
figure-style data structures, in the same spirit as the ``figNN_*``
generators of :mod:`repro.analysis.figures`:

* :func:`lifetime_policy_comparison` -- summary metrics per (allocator
  preset, scheduling policy): the dynamic counterpart of Figure 8;
* :func:`lifetime_failure_sweep` -- summary metrics versus board MTBF: the
  dynamic counterpart of Figure 10;
* :func:`lifetime_utilization_timeline` -- downsampled utilization /
  fragmentation step functions for plotting a single run.

The comparison/sweep helpers run one engine cell per simulator
configuration: cells describe the service-time and failure models as
JSON specs (class name + fields) so that they can execute in worker
processes and be content-cached.  Passing a custom
:class:`~repro.cluster.ServiceTimeModel` subclass falls back to inline
serial execution (live objects are not scenario data).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import (
    ClusterReport,
    ClusterSimConfig,
    ClusterSimulator,
    FailureModel,
    FixedServiceTime,
    FlowSimServiceTime,
    LogNormalServiceTime,
    ServiceTimeModel,
)
from ..exp import Grid, RunReport, Runner, cell, register_sweep, run_grid

__all__ = [
    "lifetime_policy_comparison",
    "lifetime_failure_sweep",
    "lifetime_utilization_timeline",
]

#: Summary columns reported by the comparison helpers.
SUMMARY_KEYS = (
    "time_weighted_utilization",
    "busy_utilization",
    "time_weighted_fragmentation",
    "mean_wait_time",
    "mean_slowdown",
    "evictions",
)

_DEFAULT_SERVICE = LogNormalServiceTime(median_seconds=900.0, sigma=0.6)

_SERVICE_CLASSES = {
    cls.__name__: cls
    for cls in (FixedServiceTime, LogNormalServiceTime, FlowSimServiceTime)
}


def _service_spec(model: Optional[ServiceTimeModel]) -> Optional[dict]:
    """JSON spec of a known service-time model; ``None`` if not spec-able."""
    model = model or _DEFAULT_SERVICE
    if type(model).__name__ in _SERVICE_CLASSES and dataclasses.is_dataclass(model):
        return {
            "cls": type(model).__name__,
            "kwargs": dataclasses.asdict(model),
        }
    return None


def _service_from_spec(spec: dict) -> ServiceTimeModel:
    cls = _SERVICE_CLASSES[spec["cls"]]
    kwargs = dict(spec["kwargs"])
    # JSON turns tuples into lists; restore tuple-typed dataclass fields
    for key, value in kwargs.items():
        if isinstance(value, list):
            kwargs[key] = tuple(value)
    return cls(**kwargs)


def _failure_spec(model: Optional[FailureModel]) -> Optional[dict]:
    return dataclasses.asdict(model) if model is not None else None


@cell(version=1)
def lifetime_cell(
    *,
    x: int,
    y: int,
    preset: str,
    policy: str,
    num_jobs: int,
    load: float,
    service: dict,
    failures: Optional[dict],
    seed: int,
):
    """Summary metrics of one cluster lifetime run."""
    config = ClusterSimConfig(
        x=x,
        y=y,
        allocator=preset,
        policy=policy,
        num_jobs=num_jobs,
        load=load,
        service=_service_from_spec(service),
        failures=FailureModel(**failures) if failures else None,
        seed=seed,
    )
    return _run_inline(config)


def _run_inline(config: ClusterSimConfig) -> Dict[str, float]:
    summary = ClusterSimulator(config).run().summary()
    out = {k: summary[k] for k in SUMMARY_KEYS}
    out["failures"] = summary["failures"]
    return out


# ------------------------------------------------------- policy comparison
def lifetime_policies_grid(
    *,
    x: int = 16,
    y: int = 16,
    presets: Sequence[str] = (
        "greedy",
        "greedy+transpose",
        "greedy+transpose+aspect",
    ),
    policies: Sequence[str] = ("fcfs", "fcfs+backfill"),
    num_jobs: int = 1000,
    load: float = 2.0,
    service: Optional[dict] = None,
    failures: Optional[dict] = "default",
    seed: int = 7,
) -> Grid:
    if failures == "default":
        failures = _failure_spec(FailureModel(mtbf_hours=80.0, mttr_hours=2.0))
    grid = Grid(
        lifetime_cell,
        common={
            "x": x,
            "y": y,
            "num_jobs": num_jobs,
            "load": load,
            "service": service or _service_spec(None),
            "failures": failures,
            "seed": seed,
        },
        chunk=lambda p: f"{p['x']}x{p['y']}",
        drop=("label",),
    )
    grid.cross(preset=list(presets))
    grid.cross(policy=list(policies))
    grid.derive(lambda p: {"label": f"{p['preset']} / {p['policy']}"})
    return grid


def _lifetime_policies_post(report: RunReport) -> Dict[str, Dict[str, float]]:
    return {
        c.scenario.tags["label"]: {k: c.value[k] for k in SUMMARY_KEYS}
        for c in report
    }


def lifetime_policy_comparison(
    x: int = 16,
    y: int = 16,
    *,
    presets: Sequence[str] = (
        "greedy",
        "greedy+transpose",
        "greedy+transpose+aspect",
    ),
    policies: Sequence[str] = ("fcfs", "fcfs+backfill"),
    num_jobs: int = 1000,
    load: float = 2.0,
    service: Optional[ServiceTimeModel] = None,
    failures: Optional[FailureModel] = FailureModel(mtbf_hours=80.0, mttr_hours=2.0),
    seed: int = 7,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Summary metrics per allocator preset x scheduling policy.

    Returns ``{"preset / policy": {metric: value}}`` suitable for
    :func:`repro.analysis.report.format_nested_table` (transposed as
    needed).  All runs share the same seed, so they see the same arrival /
    service / failure randomness and differ only in the decision logic.
    """
    spec = _service_spec(service)
    if spec is None:  # custom model object: run inline, keep legacy semantics
        out: Dict[str, Dict[str, float]] = {}
        for preset in presets:
            for policy in policies:
                summary = _run_inline(
                    ClusterSimConfig(
                        x=x, y=y, allocator=preset, policy=policy, num_jobs=num_jobs,
                        load=load, service=service, failures=failures, seed=seed,
                    )
                )
                out[f"{preset} / {policy}"] = {k: summary[k] for k in SUMMARY_KEYS}
        return out
    grid = lifetime_policies_grid(
        x=x,
        y=y,
        presets=presets,
        policies=policies,
        num_jobs=num_jobs,
        load=load,
        service=spec,
        failures=_failure_spec(failures),
        seed=seed,
    )
    return _lifetime_policies_post(run_grid(grid, runner=runner, workers=workers))


# ----------------------------------------------------------- failure sweep
def lifetime_failures_grid(
    *,
    x: int = 16,
    y: int = 16,
    mtbf_hours: Sequence[float] = (320.0, 80.0, 20.0),
    mttr_hours: float = 2.0,
    eviction: str = "requeue",
    allocator: str = "greedy+transpose+aspect",
    policy: str = "fcfs+backfill",
    num_jobs: int = 600,
    load: float = 2.0,
    service: Optional[dict] = None,
    seed: int = 7,
) -> Grid:
    grid = Grid(
        lifetime_cell,
        common={
            "x": x,
            "y": y,
            "preset": allocator,
            "policy": policy,
            "num_jobs": num_jobs,
            "load": load,
            "service": service or _service_spec(None),
            "seed": seed,
        },
        chunk=lambda p: f"{p['x']}x{p['y']}",
        drop=("mtbf", "label"),
    )
    grid.cross(mtbf=[float(v) for v in mtbf_hours])
    grid.derive(
        lambda p: {
            "failures": _failure_spec(
                FailureModel(
                    mtbf_hours=p["mtbf"], mttr_hours=mttr_hours, eviction=eviction
                )
            ),
            "label": f"MTBF {p['mtbf']:g}h",
        }
    )
    return grid


def _lifetime_failures_post(report: RunReport) -> Dict[str, Dict[str, float]]:
    return {c.scenario.tags["label"]: dict(c.value) for c in report}


def lifetime_failure_sweep(
    x: int = 16,
    y: int = 16,
    *,
    mtbf_hours: Sequence[float] = (320.0, 80.0, 20.0),
    mttr_hours: float = 2.0,
    eviction: str = "requeue",
    allocator: str = "greedy+transpose+aspect",
    policy: str = "fcfs+backfill",
    num_jobs: int = 600,
    load: float = 2.0,
    service: Optional[ServiceTimeModel] = None,
    seed: int = 7,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Summary metrics as the board MTBF shrinks (failure intensity grows).

    The dynamic generalization of Figure 10: instead of failing ``k``
    boards once, boards fail continuously and jobs are evicted/requeued
    (or shrunk), so the metric captures eviction work loss and repair
    interplay, not just packing on a degraded grid.
    """
    spec = _service_spec(service)
    if spec is None:
        out: Dict[str, Dict[str, float]] = {}
        for mtbf in mtbf_hours:
            out[f"MTBF {mtbf:g}h"] = _run_inline(
                ClusterSimConfig(
                    x=x, y=y, allocator=allocator, policy=policy, num_jobs=num_jobs,
                    load=load, service=service,
                    failures=FailureModel(
                        mtbf_hours=mtbf, mttr_hours=mttr_hours, eviction=eviction
                    ),
                    seed=seed,
                )
            )
        return out
    grid = lifetime_failures_grid(
        x=x,
        y=y,
        mtbf_hours=mtbf_hours,
        mttr_hours=mttr_hours,
        eviction=eviction,
        allocator=allocator,
        policy=policy,
        num_jobs=num_jobs,
        load=load,
        service=spec,
        seed=seed,
    )
    return _lifetime_failures_post(run_grid(grid, runner=runner, workers=workers))


# ---------------------------------------------------------------- timeline
def lifetime_utilization_timeline(
    report: ClusterReport, *, max_points: int = 200
) -> Dict[str, List[Tuple[float, float]]]:
    """Downsampled utilization and fragmentation step functions of one run."""
    series = {
        "utilization": report.metrics.utilization_timeline(),
        "fragmentation": report.metrics.fragmentation_timeline(),
    }
    out: Dict[str, List[Tuple[float, float]]] = {}
    for name, points in series.items():
        if len(points) > max_points:
            stride = -(-len(points) // max_points)  # ceil keeps <= max_points
            sampled = points[::stride]
            if sampled[-1] != points[-1]:
                sampled[-1] = points[-1]  # the series must end where the run does
            points = sampled
        out[name] = [(float(t), float(v)) for t, v in points]
    return out


register_sweep(
    "lifetime_policies",
    build=lifetime_policies_grid,
    post=_lifetime_policies_post,
    description="Cluster lifetime: allocator preset x scheduling policy",
    artifact="cluster_lifetime_policies",
)
register_sweep(
    "lifetime_failures",
    build=lifetime_failures_grid,
    post=_lifetime_failures_post,
    description="Cluster lifetime: failure-intensity (MTBF) sweep",
    artifact="cluster_lifetime_failure_sweep",
)
