"""Cluster lifetime experiments (beyond the paper's static Figures 8/10).

These helpers run the event-driven :mod:`repro.cluster` simulator across
allocator presets, scheduling policies, or failure intensities and return
figure-style data structures, in the same spirit as the ``figNN_*``
generators of :mod:`repro.analysis.figures`:

* :func:`lifetime_policy_comparison` -- summary metrics per (allocator
  preset, scheduling policy): the dynamic counterpart of Figure 8;
* :func:`lifetime_failure_sweep` -- summary metrics versus board MTBF: the
  dynamic counterpart of Figure 10;
* :func:`lifetime_utilization_timeline` -- downsampled utilization /
  fragmentation step functions for plotting a single run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import (
    ClusterReport,
    ClusterSimConfig,
    ClusterSimulator,
    FailureModel,
    LogNormalServiceTime,
    ServiceTimeModel,
)

__all__ = [
    "lifetime_policy_comparison",
    "lifetime_failure_sweep",
    "lifetime_utilization_timeline",
]

#: Summary columns reported by the comparison helpers.
SUMMARY_KEYS = (
    "time_weighted_utilization",
    "busy_utilization",
    "time_weighted_fragmentation",
    "mean_wait_time",
    "mean_slowdown",
    "evictions",
)

_DEFAULT_SERVICE = LogNormalServiceTime(median_seconds=900.0, sigma=0.6)


def _run(config: ClusterSimConfig) -> ClusterReport:
    return ClusterSimulator(config).run()


def lifetime_policy_comparison(
    x: int = 16,
    y: int = 16,
    *,
    presets: Sequence[str] = (
        "greedy",
        "greedy+transpose",
        "greedy+transpose+aspect",
    ),
    policies: Sequence[str] = ("fcfs", "fcfs+backfill"),
    num_jobs: int = 1000,
    load: float = 2.0,
    service: Optional[ServiceTimeModel] = None,
    failures: Optional[FailureModel] = FailureModel(mtbf_hours=80.0, mttr_hours=2.0),
    seed: int = 7,
) -> Dict[str, Dict[str, float]]:
    """Summary metrics per allocator preset x scheduling policy.

    Returns ``{"preset / policy": {metric: value}}`` suitable for
    :func:`repro.analysis.report.format_nested_table` (transposed as
    needed).  All runs share the same seed, so they see the same arrival /
    service / failure randomness and differ only in the decision logic.
    """
    out: Dict[str, Dict[str, float]] = {}
    for preset in presets:
        for policy in policies:
            config = ClusterSimConfig(
                x=x,
                y=y,
                allocator=preset,
                policy=policy,
                num_jobs=num_jobs,
                load=load,
                service=service or _DEFAULT_SERVICE,
                failures=failures,
                seed=seed,
            )
            summary = _run(config).summary()
            out[f"{preset} / {policy}"] = {k: summary[k] for k in SUMMARY_KEYS}
    return out


def lifetime_failure_sweep(
    x: int = 16,
    y: int = 16,
    *,
    mtbf_hours: Sequence[float] = (320.0, 80.0, 20.0),
    mttr_hours: float = 2.0,
    eviction: str = "requeue",
    allocator: str = "greedy+transpose+aspect",
    policy: str = "fcfs+backfill",
    num_jobs: int = 600,
    load: float = 2.0,
    service: Optional[ServiceTimeModel] = None,
    seed: int = 7,
) -> Dict[str, Dict[str, float]]:
    """Summary metrics as the board MTBF shrinks (failure intensity grows).

    The dynamic generalization of Figure 10: instead of failing ``k``
    boards once, boards fail continuously and jobs are evicted/requeued
    (or shrunk), so the metric captures eviction work loss and repair
    interplay, not just packing on a degraded grid.
    """
    out: Dict[str, Dict[str, float]] = {}
    for mtbf in mtbf_hours:
        config = ClusterSimConfig(
            x=x,
            y=y,
            allocator=allocator,
            policy=policy,
            num_jobs=num_jobs,
            load=load,
            service=service or _DEFAULT_SERVICE,
            failures=FailureModel(
                mtbf_hours=mtbf, mttr_hours=mttr_hours, eviction=eviction
            ),
            seed=seed,
        )
        summary = _run(config).summary()
        row = {k: summary[k] for k in SUMMARY_KEYS}
        row["failures"] = summary["failures"]
        out[f"MTBF {mtbf:g}h"] = row
    return out


def lifetime_utilization_timeline(
    report: ClusterReport, *, max_points: int = 200
) -> Dict[str, List[Tuple[float, float]]]:
    """Downsampled utilization and fragmentation step functions of one run."""
    series = {
        "utilization": report.metrics.utilization_timeline(),
        "fragmentation": report.metrics.fragmentation_timeline(),
    }
    out: Dict[str, List[Tuple[float, float]]] = {}
    for name, points in series.items():
        if len(points) > max_points:
            stride = -(-len(points) // max_points)  # ceil keeps <= max_points
            sampled = points[::stride]
            if sampled[-1] != points[-1]:
                sampled[-1] = points[-1]  # the series must end where the run does
            points = sampled
        out[name] = [(float(t), float(v)) for t, v in points]
    return out
