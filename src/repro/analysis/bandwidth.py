"""Bandwidth measurements used by Table II and the microbenchmark figures.

Thin wrappers around the flow-level simulator that implement the paper's
measurement conventions:

* **global (alltoall) bandwidth** is reported as the achievable fraction of
  each accelerator's injection bandwidth (1.6 Tb/s) for large messages;
* **allreduce bandwidth** is reported as the fraction of the theoretical
  optimum (half the injection bandwidth) achieved by the best large-message
  algorithm: two bidirectional rings on edge-disjoint Hamiltonian cycles on
  the grid topologies, the standard per-plane bidirectional ring on the
  switched topologies;
* **permutation traffic** reports the per-accelerator receive-bandwidth
  distribution under max-min fair sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..collectives.ring import dual_ring_steady_flows, ring_orders_for
from ..sim.flowsim import FlowSimulator
from ..sim.traffic import random_permutation
from ..topology.base import Topology

__all__ = [
    "measure_alltoall_fraction",
    "measure_allreduce_fraction",
    "measure_permutation_fractions",
    "BandwidthSummary",
    "measure_topology",
]


def measure_alltoall_fraction(
    topo: Topology,
    *,
    num_phases: Optional[int] = 48,
    max_paths: int = 8,
    seed: int = 1,
    sim: Optional[FlowSimulator] = None,
) -> float:
    """Global (alltoall) bandwidth as a fraction of injection bandwidth."""
    sim = sim or FlowSimulator(topo, max_paths=max_paths)
    return sim.alltoall_bandwidth(num_phases=num_phases, seed=seed)


def measure_allreduce_fraction(
    topo: Topology,
    *,
    max_paths: int = 8,
    sim: Optional[FlowSimulator] = None,
) -> float:
    """Allreduce bandwidth as a fraction of the theoretical optimum.

    The grid topologies (HammingMesh, torus) run two bidirectional rings on
    edge-disjoint Hamiltonian cycles; the switched topologies run one
    bidirectional ring per plane (collapsed into a single ring at 4x
    capacity).  The achieved fraction is the sustainable per-accelerator
    send rate divided by the injection bandwidth (each byte is sent twice by
    a bandwidth-optimal ring, and the optimum is injection/2, so the two
    factors of two cancel).
    """
    sim = sim or FlowSimulator(topo, max_paths=max_paths)
    orders = ring_orders_for(topo)
    flows = dual_ring_steady_flows(orders)
    result = sim.symmetric_rate(flows)
    flows_per_acc = 2 * len(orders)
    send_rate = result.min_rate * flows_per_acc
    return min(send_rate / sim.injection_capacity, 1.0)


def measure_permutation_fractions(
    topo: Topology,
    *,
    num_permutations: int = 4,
    max_paths: int = 8,
    seed: int = 0,
    sim: Optional[FlowSimulator] = None,
) -> np.ndarray:
    """Per-accelerator receive bandwidth fractions under permutation traffic.

    Concatenates the per-accelerator results of ``num_permutations``
    independent random permutations (Figure 12 plots the distribution).
    """
    sim = sim or FlowSimulator(topo, max_paths=max_paths)
    samples: List[np.ndarray] = []
    for i in range(num_permutations):
        flows = random_permutation(len(sim.ranks), seed=seed + i)
        samples.append(sim.permutation_bandwidths(flows))
    return np.concatenate(samples)


@dataclass(frozen=True)
class BandwidthSummary:
    """Measured bandwidth fractions of one topology."""

    name: str
    alltoall_fraction: float
    allreduce_fraction: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "alltoall_fraction": self.alltoall_fraction,
            "allreduce_fraction": self.allreduce_fraction,
        }


def measure_topology(
    topo: Topology,
    *,
    num_phases: Optional[int] = 48,
    max_paths: int = 8,
    seed: int = 1,
) -> BandwidthSummary:
    """Measure both Table-II bandwidth columns for one topology."""
    sim = FlowSimulator(topo, max_paths=max_paths)
    return BandwidthSummary(
        name=topo.name,
        alltoall_fraction=measure_alltoall_fraction(
            topo, num_phases=num_phases, seed=seed, sim=sim
        ),
        allreduce_fraction=measure_allreduce_fraction(topo, sim=sim),
    )
