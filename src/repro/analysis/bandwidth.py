"""Bandwidth measurements used by Table II and the microbenchmark figures.

Thin wrappers around the pluggable network-model backends
(:mod:`repro.sim.backend`) that implement the paper's measurement
conventions:

* **global (alltoall) bandwidth** is reported as the achievable fraction of
  each accelerator's injection bandwidth (1.6 Tb/s) for large messages;
* **allreduce bandwidth** is reported as the fraction of the theoretical
  optimum (half the injection bandwidth) achieved by the best large-message
  algorithm: two bidirectional rings on edge-disjoint Hamiltonian cycles on
  the grid topologies, the standard per-plane bidirectional ring on the
  switched topologies;
* **permutation traffic** reports the per-accelerator receive-bandwidth
  distribution under max-min fair sharing.

Every function accepts ``backend`` — a registered backend name
(``"analytic"``, ``"flow"``, ``"packet"``) or a ready
:class:`~repro.sim.backend.NetworkModel` — so the same measurement can be
re-run at a different fidelity.  The default is the flow-level simulator,
which reproduces Table II.  Because backends share the memoized per-topology
:class:`~repro.sim.routing.RouteTable`, repeated measurements on one
topology reuse all routing work even when each call constructs a fresh
backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..exp import cell
from ..sim.backend import FlowBackend, NetworkModel, get_backend
from ..sim.flowsim import FlowSimulator
from ..topology.base import Topology

__all__ = [
    "measure_alltoall_fraction",
    "measure_allreduce_fraction",
    "measure_permutation_fractions",
    "BandwidthSummary",
    "measure_topology",
    "measure_cluster_cell",
]

BackendLike = Union[str, NetworkModel]


def _resolve(
    topo: Topology,
    backend: BackendLike,
    sim: Optional[FlowSimulator],
    max_paths: int,
    policy: Optional[str] = None,
) -> NetworkModel:
    """Build/pass through the backend; ``sim`` keeps the legacy signature."""
    if sim is not None:
        if sim.topo is not topo:
            raise ValueError("simulator is bound to a different topology")
        # FlowBackend raises if the requested policy conflicts with the
        # simulator's own (a prebuilt sim carries its policy with it).
        return FlowBackend(sim=sim, policy=policy)
    if isinstance(backend, NetworkModel):
        return get_backend(backend, topo)
    if backend == "analytic":
        # the congestion-free model ignores the policy but still validates it
        return get_backend(backend, topo, policy=policy)
    # both simulation fidelities honour the caller's multipath width and
    # routing policy (minimal / ecmp / valiant / ugal)
    return get_backend(backend, topo, max_paths=max_paths, policy=policy)


def measure_alltoall_fraction(
    topo: Topology,
    *,
    num_phases: Optional[int] = 48,
    max_paths: int = 8,
    seed: int = 1,
    sim: Optional[FlowSimulator] = None,
    backend: BackendLike = "flow",
    policy: Optional[str] = None,
) -> float:
    """Global (alltoall) bandwidth as a fraction of injection bandwidth."""
    model = _resolve(topo, backend, sim, max_paths, policy)
    return model.alltoall_fraction(num_phases=num_phases, seed=seed)


def measure_allreduce_fraction(
    topo: Topology,
    *,
    max_paths: int = 8,
    sim: Optional[FlowSimulator] = None,
    backend: BackendLike = "flow",
    policy: Optional[str] = None,
) -> float:
    """Allreduce bandwidth as a fraction of the theoretical optimum.

    The grid topologies (HammingMesh, torus) run two bidirectional rings on
    edge-disjoint Hamiltonian cycles; the switched topologies run one
    bidirectional ring per plane (collapsed into a single ring at 4x
    capacity).  The achieved fraction is the sustainable per-accelerator
    send rate divided by the injection bandwidth (each byte is sent twice by
    a bandwidth-optimal ring, and the optimum is injection/2, so the two
    factors of two cancel).
    """
    model = _resolve(topo, backend, sim, max_paths, policy)
    return model.allreduce_fraction()


def measure_permutation_fractions(
    topo: Topology,
    *,
    num_permutations: int = 4,
    max_paths: int = 8,
    seed: int = 0,
    sim: Optional[FlowSimulator] = None,
    backend: BackendLike = "flow",
    policy: Optional[str] = None,
) -> np.ndarray:
    """Per-accelerator receive bandwidth fractions under permutation traffic.

    Concatenates the per-accelerator results of ``num_permutations``
    independent random permutations (Figure 12 plots the distribution).
    """
    model = _resolve(topo, backend, sim, max_paths, policy)
    return model.permutation_fractions(num_permutations=num_permutations, seed=seed)


@dataclass(frozen=True)
class BandwidthSummary:
    """Measured bandwidth fractions of one topology."""

    name: str
    alltoall_fraction: float
    allreduce_fraction: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "alltoall_fraction": self.alltoall_fraction,
            "allreduce_fraction": self.allreduce_fraction,
        }


def measure_topology(
    topo: Topology,
    *,
    num_phases: Optional[int] = 48,
    max_paths: int = 8,
    seed: int = 1,
    backend: BackendLike = "flow",
    policy: Optional[str] = None,
) -> BandwidthSummary:
    """Measure both Table-II bandwidth columns for one topology."""
    model = _resolve(topo, backend, None, max_paths, policy)
    return BandwidthSummary(
        name=topo.name,
        alltoall_fraction=model.alltoall_fraction(num_phases=num_phases, seed=seed),
        allreduce_fraction=model.allreduce_fraction(),
    )


@cell(version=1)
def measure_cluster_cell(
    *,
    cluster: str,
    key: str,
    num_phases: Optional[int] = 48,
    max_paths: int = 8,
    seed: int = 1,
    backend: str = "flow",
    policy: str = "minimal",
) -> dict:
    """Engine cell: both Table-II bandwidth columns of one named topology.

    Shared by ``build_table2`` and ``network_profiles(measure=True)``, so a
    combined table/figure sweep measures (and caches) each topology exactly
    once per fidelity setting.
    """
    from .clusters import cluster_configs

    config = {c.key: c for c in cluster_configs(cluster)}[key]
    summary = measure_topology(
        config.build(), num_phases=num_phases, max_paths=max_paths, seed=seed,
        backend=backend, policy=policy,
    )
    return {
        "alltoall_fraction": float(summary.alltoall_fraction),
        "allreduce_fraction": float(summary.allreduce_fraction),
    }
