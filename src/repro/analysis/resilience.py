"""Bandwidth-vs-faults study: the fault-resilience sweep.

The paper argues HammingMesh degrades gracefully under cable faults —
path diversity turns a dead cable into a bandwidth loss, not a
connectivity loss.  This sweep quantifies that claim for every topology
family of the routing-policy study: for each ``(family, policy, fault
count)`` point a deterministic nested sample of dead cables
(:func:`~repro.sim.faults.sample_link_faults`) degrades the fabric, and
the flow backend measures alltoall (phase-capped, the Figure-11
convention for large instances) and random-permutation bandwidth over
the surviving pairs.  Because fault samples are nested prefixes, each
family's curve is monotone in the *fault set*, and the post-processing
normalizes every point by its own fault-free row into **retained
fractions** — the number the paper's resilience argument is about.

``num_faults=0`` cells run the ordinary fault-free backend (the empty
:class:`~repro.sim.faults.FaultSet` maps to the shared memoized route
table), so the baseline row is bit-identical to the unfaulted study by
construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..exp import Grid, RunReport, Runner, cell, register_sweep, run_grid
from .figures import ROUTING_POLICY_TOPOS, _routing_policy_topo

__all__ = [
    "fault_resilience_cell",
    "fault_resilience_grid",
    "fault_resilience_sweep",
]

#: fault counts of the committed curve (0 pins the fault-free baseline)
FAULT_COUNTS = (0, 1, 2, 4, 8)
#: policies worth contrasting under faults: minimal shows the raw
#: diversity of the family, UGAL shows what adaptive routing recovers
RESILIENCE_POLICIES = ("minimal", "ugal")


@cell(version=1)
def fault_resilience_cell(
    *,
    topo_key: str,
    policy: str,
    num_faults: int,
    seed: int = 0,
    max_paths: int = 8,
    num_random: int = 2,
    num_phases: int = 16,
) -> dict:
    """Surviving bandwidth of one ``(family, policy, fault count)`` point.

    Measures the alltoall fraction and random-permutation receive
    fractions through a flow backend over the degraded route table, plus
    the disconnected-pair count the backend reported (pairs are zeroed,
    never crashed on).  The fault sample is the deterministic nested
    prefix for ``(topology, seed)``, so points along the ``num_faults``
    axis describe one growing fault scenario.
    """
    from ..sim import get_backend, sample_link_faults

    topo = _routing_policy_topo(topo_key)
    faults = sample_link_faults(topo, num_faults, seed=seed)
    model = get_backend(
        "flow", topo, max_paths=max_paths, policy=policy, faults=faults
    )
    fractions = model.permutation_fractions(num_permutations=num_random, seed=seed)
    alltoall = model.alltoall_fraction(num_phases=num_phases, seed=seed)
    return {
        "alltoall_fraction": float(alltoall),
        "permutation_mean": float(fractions.mean()),
        "permutation_min": float(fractions.min()),
        "dead_links": len(faults.dead_links),
        "disconnected_pairs": int(model.disconnected_pairs),
    }


def fault_resilience_grid(
    *,
    topo_keys: Sequence[str] = tuple(ROUTING_POLICY_TOPOS),
    policies: Sequence[str] = RESILIENCE_POLICIES,
    fault_counts: Sequence[int] = FAULT_COUNTS,
    seed: int = 0,
    max_paths: int = 8,
    num_random: int = 2,
    num_phases: int = 16,
) -> Grid:
    grid = Grid(
        fault_resilience_cell,
        common={
            "seed": seed,
            "max_paths": max_paths,
            "num_random": num_random,
            "num_phases": num_phases,
        },
        # Chunk by topology (routing-policy study convention): one worker
        # walks a family's whole fault schedule, so the fault-free table
        # and every degraded table stay memoized across its cells.
        chunk=lambda p: p["topo_key"],
    )
    grid.cross("topo_key", list(topo_keys))
    grid.cross("policy", list(policies))
    grid.cross("num_faults", list(fault_counts))
    return grid


def _fault_resilience_post(
    report: RunReport,
) -> Dict[str, Dict[str, Dict[str, list]]]:
    """``{topo_key: {policy: {"curve": [point, ...]}}}`` sorted by fault count.

    Each point carries the measured fractions plus ``retained_alltoall``
    and ``retained_permutation`` — the point's bandwidth relative to the
    same (family, policy) fault-free row.
    """
    by_pair: Dict[str, Dict[str, Dict[int, dict]]] = {}
    for c in report:
        params = c.scenario.params
        by_pair.setdefault(params["topo_key"], {}).setdefault(
            params["policy"], {}
        )[params["num_faults"]] = dict(c.value)
    results: Dict[str, Dict[str, Dict[str, list]]] = {}
    for topo_key, by_policy in by_pair.items():
        for policy, points in by_policy.items():
            base = points.get(0, {})
            base_a2a = float(base.get("alltoall_fraction", 0.0))
            base_perm = float(base.get("permutation_mean", 0.0))
            curve = []
            for num_faults in sorted(points):
                point = dict(points[num_faults])
                point["num_faults"] = num_faults
                point["retained_alltoall"] = (
                    point["alltoall_fraction"] / base_a2a if base_a2a > 0 else 0.0
                )
                point["retained_permutation"] = (
                    point["permutation_mean"] / base_perm if base_perm > 0 else 0.0
                )
                curve.append(point)
            results.setdefault(topo_key, {})[policy] = {"curve": curve}
    return results


def fault_resilience_sweep(
    *,
    topo_keys: Sequence[str] = tuple(ROUTING_POLICY_TOPOS),
    policies: Sequence[str] = RESILIENCE_POLICIES,
    fault_counts: Sequence[int] = FAULT_COUNTS,
    seed: int = 0,
    max_paths: int = 8,
    num_random: int = 2,
    num_phases: int = 16,
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, list]]]:
    """Bandwidth-vs-faults curves per family per policy.

    Returns ``{topo_key: {policy: {"curve": [{num_faults,
    alltoall_fraction, permutation_mean, permutation_min,
    retained_alltoall, retained_permutation, dead_links,
    disconnected_pairs}, ...]}}}`` (recorded in
    ``BENCH_fault_resilience.json``).
    """
    grid = fault_resilience_grid(
        topo_keys=topo_keys,
        policies=policies,
        fault_counts=fault_counts,
        seed=seed,
        max_paths=max_paths,
        num_random=num_random,
        num_phases=num_phases,
    )
    return _fault_resilience_post(run_grid(grid, runner=runner, workers=workers))


register_sweep(
    "fault_resilience",
    build=fault_resilience_grid,
    post=_fault_resilience_post,
    description="Bandwidth retained under nested link-fault schedules per family per policy",
    artifact="fault_resilience",
)
