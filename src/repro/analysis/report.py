"""Plain-text rendering of figure series (the benchmarks print these)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["format_series", "format_distribution_summary", "format_nested_table"]


def format_series(
    title: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    x_label: str = "x",
    y_label: str = "y",
    y_scale: float = 1.0,
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an aligned text table."""
    lines = [title]
    xs = sorted({x for s in series.values() for x, _ in s})
    header = f"{x_label:>14} " + " ".join(f"{label[:16]:>17}" for label in series)
    lines.append(header)
    for x in xs:
        row = [f"{x:>14.5g}"]
        for label, points in series.items():
            lookup = dict(points)
            value = lookup.get(x)
            row.append(f"{value * y_scale:>17.4g}" if value is not None else f"{'-':>17}")
        lines.append(" ".join(row))
    lines.append(f"(values: {y_label})")
    return "\n".join(lines)


def format_distribution_summary(
    title: str, distributions: Mapping[str, Sequence[float]], *, scale: float = 100.0
) -> str:
    """Render distributions as mean / median / percentiles."""
    lines = [title, f"{'label':<26}{'mean':>9}{'median':>9}{'p5':>9}{'p95':>9}"]
    for label, values in distributions.items():
        arr = np.asarray(list(values), dtype=float) * scale
        lines.append(
            f"{label[:25]:<26}{arr.mean():>9.2f}{np.median(arr):>9.2f}"
            f"{np.percentile(arr, 5):>9.2f}{np.percentile(arr, 95):>9.2f}"
        )
    return "\n".join(lines)


def format_nested_table(
    title: str, data: Mapping[str, Mapping[str, float]], *, value_format: str = "{:.2f}"
) -> str:
    """Render ``{row: {column: value}}`` as a text matrix."""
    columns: List[str] = []
    for row in data.values():
        for col in row:
            if col not in columns:
                columns.append(col)
    lines = [title, f"{'':<30}" + "".join(f"{c[:14]:>16}" for c in columns)]
    for row_label, row in data.items():
        cells = []
        for col in columns:
            value = row.get(col)
            cells.append(
                f"{value_format.format(value):>16}" if value is not None else f"{'-':>16}"
            )
        lines.append(f"{row_label[:29]:<30}" + "".join(cells))
    return "\n".join(lines)
