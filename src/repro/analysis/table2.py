"""Assembly of Table II: cost, bandwidth and diameter of all topologies.

For each configuration of :mod:`repro.analysis.clusters` the row contains:

* network cost in millions of dollars (capital-cost model),
* global (alltoall) bandwidth as % of injection (flow-level simulation),
* global-bandwidth cost saving relative to the nonblocking fat tree,
* allreduce bandwidth as % of the theoretical optimum,
* allreduce cost saving relative to the nonblocking fat tree,
* network diameter in cables.

Savings follow the paper's definition: the ratio of *cost per unit of
bandwidth* of the nonblocking fat tree to that of the topology at hand.

The bandwidth measurements run through the experiment engine
(:mod:`repro.exp`) as one :func:`~repro.analysis.bandwidth.measure_cluster_cell`
per topology -- the same cells ``network_profiles(measure=True)`` sweeps,
so combined runs share both the process-parallelism and the result cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exp import Grid, RunReport, Runner, cell, register_sweep, run_grid
from .bandwidth import measure_topology
from .clusters import ClusterTopology, cluster_configs
from .figures import measurement_grid

__all__ = ["Table2Row", "build_table2", "format_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II (measured values, plus the paper's for reference)."""

    key: str
    label: str
    cost_millions: float
    global_bw_percent: float
    global_saving: float
    allreduce_bw_percent: float
    allreduce_saving: float
    diameter: int
    paper: Dict[str, float]

    def as_dict(self) -> Dict[str, float]:
        d = dataclasses.asdict(self)
        return d


def _savings(
    cost: float, bw: float, reference_cost: float, reference_bw: float
) -> float:
    """Cost-per-bandwidth saving relative to the reference topology."""
    if bw <= 0 or reference_bw <= 0:
        return 0.0
    return (reference_cost / reference_bw) / (cost / bw)


def _rows_from(
    measurements: List[Tuple[ClusterTopology, Dict[str, float]]]
) -> List[Table2Row]:
    """Assemble rows from per-topology measured bandwidth fractions."""
    if not measurements:
        return []
    reference = next(
        ((c, m) for c, m in measurements if c.key == "ft_nonblocking"),
        measurements[0],
    )
    ref_cost = reference[0].cost.total_millions
    ref_global = reference[1]["alltoall_fraction"]
    ref_allreduce = reference[1]["allreduce_fraction"]

    rows: List[Table2Row] = []
    for config, measured in measurements:
        cost = config.cost.total_millions
        rows.append(
            Table2Row(
                key=config.key,
                label=config.label,
                cost_millions=cost,
                global_bw_percent=measured["alltoall_fraction"] * 100.0,
                global_saving=_savings(
                    cost, measured["alltoall_fraction"], ref_cost, ref_global
                ),
                allreduce_bw_percent=measured["allreduce_fraction"] * 100.0,
                allreduce_saving=_savings(
                    cost, measured["allreduce_fraction"], ref_cost, ref_allreduce
                ),
                diameter=config.analytic_diameter,
                paper=dict(config.paper),
            )
        )
    return rows


def _table2_post(report: RunReport) -> List[Table2Row]:
    cells = list(report)
    if not cells:
        return []
    cluster = cells[0].scenario.params["cluster"]
    configs = {c.key: c for c in cluster_configs(cluster)}
    return _rows_from([(configs[c.scenario.tags["key"]], c.value) for c in cells])


def build_table2(
    cluster: str = "small",
    *,
    num_phases: Optional[int] = 48,
    max_paths: int = 8,
    seed: int = 1,
    configs: Optional[List[ClusterTopology]] = None,
    skip_keys: Optional[List[str]] = None,
    backend: str = "flow",
    runner: Optional[Runner] = None,
    workers: Optional[int] = None,
) -> List[Table2Row]:
    """Build the Table II rows for the given cluster scale.

    ``num_phases``/``max_paths`` control the fidelity (and run time) of the
    bandwidth measurements; the benchmark harness uses reduced settings for
    the 16k-accelerator cluster unless a full run is requested.
    ``skip_keys`` allows omitting individual topologies (e.g. the very large
    graphs) from a quick run.

    The named clusters sweep one engine cell per topology; passing explicit
    ``configs`` (ad-hoc :class:`ClusterTopology` objects carrying builder
    callables) measures inline, since such configs are not scenario data.
    """
    skip = set(skip_keys or [])
    if configs is not None:
        measurements: List[Tuple[ClusterTopology, Dict[str, float]]] = []
        for config in configs:
            if config.key in skip:
                continue
            summary = measure_topology(
                config.build(),
                num_phases=num_phases,
                max_paths=max_paths,
                seed=seed,
                backend=backend,
            )
            measurements.append(
                (
                    config,
                    {
                        "alltoall_fraction": summary.alltoall_fraction,
                        "allreduce_fraction": summary.allreduce_fraction,
                    },
                )
            )
        return _rows_from(measurements)

    grid = measurement_grid(
        cluster=cluster,
        num_phases=num_phases,
        max_paths=max_paths,
        seed=seed,
        backend=backend,
        skip_keys=tuple(skip),
    )
    return _table2_post(run_grid(grid, runner=runner, workers=workers))


@cell(version=1)
def table2_costs_cell(*, clusters: Tuple[str, ...] = ("small", "large")):
    """The cost column alone (cheap, always evaluable at full scale)."""
    return {
        cluster: {
            config.label: config.cost.total_millions
            for config in cluster_configs(cluster)
        }
        for cluster in clusters
    }


def table2_costs_grid(*, clusters: Tuple[str, ...] = ("small", "large")) -> Grid:
    return Grid(table2_costs_cell, common={"clusters": list(clusters)})


def format_table2(rows: List[Table2Row], *, include_paper: bool = True) -> str:
    """Render Table II as a fixed-width text table (the benchmark prints this)."""
    header = (
        f"{'topology':<24}{'cost[M$]':>10}{'glob BW%':>10}{'glob sav':>10}"
        f"{'ared BW%':>10}{'ared sav':>10}{'diam':>6}"
    )
    if include_paper:
        header += f"{'paper cost':>12}{'paper glob%':>12}{'paper ared%':>12}"
    lines = [header, "-" * len(header)]
    for row in rows:
        line = (
            f"{row.label:<24}{row.cost_millions:>10.1f}{row.global_bw_percent:>10.1f}"
            f"{row.global_saving:>9.1f}x{row.allreduce_bw_percent:>10.1f}"
            f"{row.allreduce_saving:>9.1f}x{row.diameter:>6d}"
        )
        if include_paper:
            line += (
                f"{row.paper.get('cost', float('nan')):>12.1f}"
                f"{row.paper.get('global_bw', float('nan')):>12.1f}"
                f"{row.paper.get('allreduce_bw', float('nan')):>12.1f}"
            )
        lines.append(line)
    return "\n".join(lines)


register_sweep(
    "table2",
    build=measurement_grid,
    post=_table2_post,
    description="Table II: cost/bandwidth/diameter of every topology",
    artifact="table2_{cluster}",
    defaults={"cluster": "small"},
)
register_sweep(
    "table2_costs",
    build=table2_costs_grid,
    post=lambda report: report.values()[0],
    description="Table II cost column only (small and large clusters)",
    artifact="table2_costs",
)
