"""Tests for the shared route tables and the pluggable network backends."""

import numpy as np
import pytest

from repro.collectives.schedule import CommSchedule, Transfer
from repro.core import build_hammingmesh
from repro.sim import (
    AnalyticBackend,
    FlowBackend,
    FlowSimulator,
    NetworkModel,
    PacketBackend,
    PacketNetwork,
    PacketSimConfig,
    RouteTable,
    available_backends,
    clear_route_tables,
    get_backend,
    path_provider_for,
    random_permutation,
    ring_neighbor_flows,
    route_table_for,
)
from repro.sim.traffic import Flow


def sample_pairs(topo, num=40, seed=0):
    """A deterministic sample of distinct accelerator node pairs."""
    rng = np.random.default_rng(seed)
    accs = list(topo.accelerators)
    pairs = []
    for _ in range(num):
        s, d = rng.choice(len(accs), size=2, replace=False)
        pairs.append((accs[int(s)], accs[int(d)]))
    return pairs


class TestRouteTable:
    def test_paths_match_providers_on_all_families(self, all_small_topologies):
        """The table serves exactly what the structured providers enumerate."""
        for family, topo in all_small_topologies.items():
            provider = path_provider_for(topo)
            table = RouteTable(topo, max_paths=4)
            for s, d in sample_pairs(topo, num=30, seed=7):
                assert table.paths(s, d) == provider.paths(s, d, max_paths=4), (
                    family,
                    s,
                    d,
                )

    def test_paths_narrowing_and_self_pair(self, hx2mesh_4x4):
        table = RouteTable(hx2mesh_4x4, max_paths=4)
        s, d = sample_pairs(hx2mesh_4x4, num=1, seed=3)[0]
        full = table.paths(s, d)
        narrowed = table.paths(s, d, max_paths=1)
        assert narrowed == full[:1]
        assert table.paths(s, s) == [[]]

    def test_memoized_per_topology_and_width(self, hx2mesh_4x4, fat_tree_64):
        clear_route_tables()
        t4 = route_table_for(hx2mesh_4x4, max_paths=4)
        assert route_table_for(hx2mesh_4x4, max_paths=4) is t4
        assert route_table_for(hx2mesh_4x4, max_paths=8) is not t4
        assert route_table_for(fat_tree_64, max_paths=4) is not t4

    def test_cache_hit_reuse_across_simulator_instances(self, hx2mesh_4x4):
        """A second simulator on the same topology reuses the routed pairs."""
        clear_route_tables()
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=2)

        sim1 = FlowSimulator(hx2mesh_4x4, max_paths=4)
        sim1.maxmin_rates(flows)
        table = sim1.table
        misses_after_first = table.stats.misses
        assert misses_after_first == table.num_pairs_routed > 0

        sim2 = FlowSimulator(hx2mesh_4x4, max_paths=4)
        assert sim2.table is table
        hits_before = table.stats.hits
        sim2.maxmin_rates(flows)
        # every pair of the repeated pattern is a cache hit, no new misses
        assert table.stats.misses == misses_after_first
        assert table.stats.hits >= hits_before + len(flows)

    def test_packet_network_shares_the_flow_table(self, hx2mesh_4x4):
        clear_route_tables()
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        net = PacketNetwork(hx2mesh_4x4, config=PacketSimConfig(max_paths=4))
        assert net.table is sim.table

    def test_assignment_cache_reuses_identical_patterns(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=5)
        asg1 = sim.assign(flows)
        asg2 = sim.assign(list(flows))
        assert asg1 is asg2
        # different demands are a different pattern
        scaled = [Flow(f.src, f.dst, demand=2.0) for f in flows]
        assert sim.assign(scaled) is not asg1

    def test_vectorized_assign_matches_reference_loop(self, all_small_topologies):
        """CSR-gathered incidence arrays equal the per-flow Python loop's."""
        for family, topo in all_small_topologies.items():
            sim = FlowSimulator(topo, max_paths=4)
            flows = random_permutation(topo.num_accelerators, seed=11)
            asg = sim.assign(flows)

            # reference: the pre-refactor per-flow construction
            entry_link, entry_subflow, subflow_flow, subflow_weight = [], [], [], []
            sub = 0
            for fi, flow in enumerate(flows):
                paths = sim.table.paths(sim.ranks[flow.src], sim.ranks[flow.dst])
                w = 1.0 / len(paths)
                for path in paths:
                    subflow_flow.append(fi)
                    subflow_weight.append(w)
                    for li in path:
                        entry_link.append(li)
                        entry_subflow.append(sub)
                    sub += 1

            assert asg.num_flows == len(flows)
            assert asg.num_subflows == sub, family
            np.testing.assert_array_equal(asg.entry_link, entry_link)
            np.testing.assert_array_equal(asg.entry_subflow, entry_subflow)
            np.testing.assert_array_equal(asg.subflow_flow, subflow_flow)
            np.testing.assert_allclose(asg.subflow_weight, subflow_weight)


class TestBackendSelection:
    def test_all_three_backends_selectable_by_name(self, fat_tree_64):
        assert available_backends() == ["analytic", "flow", "packet"]
        for name, cls in (
            ("analytic", AnalyticBackend),
            ("flow", FlowBackend),
            ("packet", PacketBackend),
        ):
            model = get_backend(name, fat_tree_64)
            assert isinstance(model, cls)
            assert isinstance(model, NetworkModel)
            assert model.name == name

    def test_unknown_backend_raises(self, fat_tree_64):
        with pytest.raises(ValueError, match="unknown network backend"):
            get_backend("bogus", fat_tree_64)
        with pytest.raises(ValueError):
            get_backend("flow")  # no topology

    def test_instance_passthrough(self, fat_tree_64, hx2mesh_4x4):
        model = get_backend("flow", fat_tree_64, max_paths=4)
        assert get_backend(model) is model
        assert get_backend(model, fat_tree_64) is model
        with pytest.raises(ValueError):
            get_backend(model, hx2mesh_4x4)

    def test_fractions_ordering_across_fidelities(self, fat_tree_64):
        analytic = get_backend("analytic", fat_tree_64)
        flow = get_backend("flow", fat_tree_64, max_paths=8)
        a_frac = analytic.alltoall_fraction()
        f_frac = flow.alltoall_fraction(num_phases=8, seed=1)
        assert a_frac == 1.0
        assert 0.0 < f_frac <= a_frac
        assert analytic.allreduce_fraction() >= flow.allreduce_fraction() - 1e-9

    def test_analytic_wraps_cost_models(self, fat_tree_64):
        from repro.collectives.cost_models import allreduce_time

        model = AnalyticBackend(fat_tree_64, alpha=1e-6)
        size = 1 << 26
        assert model.allreduce_time(size, algorithm="rings") == pytest.approx(
            allreduce_time("rings", 64, size, 1e-6, model.beta)
        )
        assert model.allreduce_bus_bandwidth(size, algorithm="tree") > 0

    def test_analytic_permutation_is_uncongested(self, fat_tree_64):
        model = AnalyticBackend(fat_tree_64)
        fractions = model.permutation_fractions(num_permutations=1, seed=0)
        np.testing.assert_allclose(fractions, 1.0)


class TestBackendAgreement:
    def test_flow_vs_packet_steady_state_through_backends(self, hx2mesh_4x4):
        """The two simulation fidelities agree on permutation throughput."""
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=4)
        flow = get_backend("flow", hx2mesh_4x4, max_paths=4)
        packet = get_backend("packet", hx2mesh_4x4, max_paths=4, message_size=1 << 18)
        flow_mean = float(flow.phase_rates(flows, exact=True).mean())
        packet_mean = float(packet.phase_rates(flows).mean())
        assert 0.6 < packet_mean / flow_mean < 1.4

    def test_permutation_fractions_agree_with_legacy_measurement(self, hx2mesh_4x4):
        from repro.analysis import measure_permutation_fractions

        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        legacy = measure_permutation_fractions(
            hx2mesh_4x4, num_permutations=2, seed=3, sim=sim
        )
        via_backend = measure_permutation_fractions(
            hx2mesh_4x4, num_permutations=2, max_paths=4, seed=3, backend="flow"
        )
        np.testing.assert_allclose(legacy, via_backend)

    def test_measure_topology_backend_selection(self, hx2mesh_4x4):
        from repro.analysis import measure_topology

        flow = measure_topology(hx2mesh_4x4, num_phases=8, max_paths=4, backend="flow")
        ideal = measure_topology(hx2mesh_4x4, backend="analytic")
        assert 0.0 < flow.alltoall_fraction < 1.0
        assert ideal.alltoall_fraction == 1.0


class TestScheduleBackends:
    def _uniform_ring_schedule(self, p, size=4096.0):
        schedule = CommSchedule()
        schedule.add_phase(
            Transfer(i, (i + 1) % p, size) for i in range(p)
        )
        return schedule

    def test_symmetric_matches_maxmin_on_uniform_ring_phase(self, hx2mesh_4x4):
        """The fast symmetric solver is exact for a uniform-size ring phase.

        The ring must follow a topology-symmetric order (a Hamiltonian cycle
        of the grid); a rank-order ring mixes on-board and mesh hops, where
        max-min fairness legitimately gives unequal rates.
        """
        from repro.collectives.ring import ring_orders_for

        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        order = ring_orders_for(hx2mesh_4x4)[0]
        flows = [
            Flow(f.src, f.dst, demand=4096.0) for f in ring_neighbor_flows(order)
        ]
        sym = sim.symmetric_rate(flows)
        mm = sim.maxmin_rates(flows)
        assert sym.min_rate == pytest.approx(mm.min_rate, rel=1e-6)
        np.testing.assert_allclose(sym.flow_rates, mm.flow_rates, rtol=1e-6)

    def test_time_accepts_backend_by_name(self, hx2mesh_4x4):
        schedule = self._uniform_ring_schedule(hx2mesh_4x4.num_accelerators)
        t_flow = schedule.time(
            "flow", 1e-6, topo=hx2mesh_4x4, max_paths=4, bytes_per_unit=50e9
        )
        t_analytic = schedule.time(
            "analytic", 1e-6, topo=hx2mesh_4x4, bytes_per_unit=50e9
        )
        assert 0 < t_analytic <= t_flow

    def test_time_flowsim_wrapper_unchanged(self, hx2mesh_4x4):
        schedule = self._uniform_ring_schedule(hx2mesh_4x4.num_accelerators)
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        t_legacy = schedule.time_flowsim(sim, 1e-6, bytes_per_unit=50e9)
        t_backend = schedule.time(FlowBackend(sim=sim), 1e-6, bytes_per_unit=50e9)
        assert t_legacy == pytest.approx(t_backend)
