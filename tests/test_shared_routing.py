"""Cross-process tests for shared-memory route tables (share/attach).

The in-process share/attach equivalences live in ``test_routing_backend``;
this module covers the multiprocessing contract: a *spawned* child (no
fork inheritance, its own resource tracker) attaches the parent's segment
zero-copy, answers queries bit-identically, and neither a clean exit nor a
hard crash of the child unlinks the owner's segment.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.sim import FlowSimulator, clear_route_tables, random_permutation
from repro.sim.routing import RouteTable, route_table_for

PAIRS_PER_TOPO = 12


def _probe_pairs(topo, count=PAIRS_PER_TOPO):
    """A deterministic spread of (src, dst) accelerator pairs."""
    accels = list(topo.accelerators)
    step = max(1, len(accels) // count)
    return [
        (accels[i], accels[(i + len(accels) // 2) % len(accels)])
        for i in range(0, step * count, step)
    ]


def _query_table(table, pairs, flows):
    """The query battery both sides run: slices, link gathers, a solve."""
    slices = [table.pair_slice(s, d) for s, d in pairs]
    path_ids = np.concatenate(
        [np.arange(first, first + count, dtype=np.int64) for first, count in slices]
    )
    links, lengths = table.gather_links(path_ids)
    sim = FlowSimulator(table.topo, max_paths=table.max_paths, table=table)
    res = sim.maxmin_rates(flows)
    return {
        "slices": slices,
        "links": np.asarray(links),
        "lengths": np.asarray(lengths),
        "flow_rates": np.asarray(res.flow_rates),
        "link_utilization": np.asarray(res.link_utilization),
        "bottleneck_link": int(res.bottleneck_link),
    }


def _child_attach_and_query(handle, pairs, flows):
    """Spawned-child worker: attach the shared table and run the battery."""
    table = RouteTable.attach(handle)
    out = _query_table(table, pairs, flows)
    out["zero_private_bytes"] = (
        table.estimated_csr_bytes() == table._csr_baseline
    )
    return out


def _child_seeded_route_table(handle, flows):
    """Spawned-child worker: the pool-initializer path (seed + factory)."""
    from repro.sim.routing import seed_shared_route_tables

    seed_shared_route_tables([handle])
    sim = FlowSimulator(
        handle.topo, max_paths=handle.max_paths, mem_budget=handle.mem_budget
    )
    attached = hasattr(sim.table, "_attach_lease")
    res = sim.maxmin_rates(flows)
    return attached, np.asarray(res.flow_rates)


def _child_attach_and_crash(handle):
    """Spawned-child worker: attach, then die without any cleanup."""
    RouteTable.attach(handle)
    os._exit(1)


@pytest.fixture(scope="module")
def spawn_pool():
    """One spawned worker shared by the module (spawn start-up is slow)."""
    with ProcessPoolExecutor(
        max_workers=1, mp_context=mp.get_context("spawn")
    ) as pool:
        yield pool


class TestCrossProcessBitIdentity:
    def test_all_families_match_across_processes(
        self, all_small_topologies, spawn_pool
    ):
        """A spawn child's attached-table answers equal the parent's exactly."""
        clear_route_tables()
        for name, topo in all_small_topologies.items():
            table = route_table_for(topo, max_paths=4)
            pairs = _probe_pairs(topo)
            flows = random_permutation(topo.num_accelerators, seed=11)
            expected = _query_table(table, pairs, flows)
            handle = table.share()
            got = spawn_pool.submit(
                _child_attach_and_query, handle, pairs, flows
            ).result(timeout=120)
            assert got["slices"] == expected["slices"], name
            assert np.array_equal(got["links"], expected["links"]), name
            assert np.array_equal(got["lengths"], expected["lengths"]), name
            assert np.array_equal(got["flow_rates"], expected["flow_rates"]), name
            assert np.array_equal(
                got["link_utilization"], expected["link_utilization"]
            ), name
            assert got["bottleneck_link"] == expected["bottleneck_link"], name
            # Snapshot pairs answer from the shared views: no private bytes.
            assert got["zero_private_bytes"], name
        clear_route_tables()

    def test_sharded_table_matches_across_processes(self, hx2mesh_4x4, spawn_pool):
        """The budget-sharded storage shares and attaches bit-identically."""
        clear_route_tables()
        table = route_table_for(hx2mesh_4x4, max_paths=4, mem_budget="64K")
        assert table.is_sharded
        pairs = _probe_pairs(hx2mesh_4x4)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=5)
        expected = _query_table(table, pairs, flows)
        got = spawn_pool.submit(
            _child_attach_and_query, table.share(), pairs, flows
        ).result(timeout=120)
        assert got["slices"] == expected["slices"]
        assert np.array_equal(got["links"], expected["links"])
        assert np.array_equal(got["flow_rates"], expected["flow_rates"])
        clear_route_tables()

    def test_seeded_factory_attaches_in_child(self, fat_tree_64, spawn_pool):
        """seed_shared_route_tables + route_table_for = attach, not rebuild."""
        clear_route_tables()
        flows = random_permutation(fat_tree_64.num_accelerators, seed=3)
        sim = FlowSimulator(fat_tree_64, max_paths=4)
        expected = sim.maxmin_rates(flows)
        attached, rates = spawn_pool.submit(
            _child_seeded_route_table, sim.table.share(), flows
        ).result(timeout=120)
        assert attached, "child built a table instead of attaching the seed"
        assert np.array_equal(rates, np.asarray(expected.flow_rates))
        clear_route_tables()


class TestSegmentLifetime:
    def test_share_is_idempotent(self, hx2mesh_4x4):
        clear_route_tables()
        table = route_table_for(hx2mesh_4x4, max_paths=4)
        table.pair_slice(*_probe_pairs(hx2mesh_4x4)[0])
        assert table.share() is table.share()
        clear_route_tables()

    def test_crashing_attacher_does_not_unlink(self, hx2mesh_4x4):
        """Regression: a child dying mid-attach must not reap the segment.

        CPython's resource tracker treats a dead process' registered
        segments as leaked and unlinks them; ``attach`` deregisters the
        child-side registration precisely so an ungraceful worker death
        (the BrokenProcessPool scenario) cannot destroy the parent's
        still-live table.
        """
        clear_route_tables()
        table = route_table_for(hx2mesh_4x4, max_paths=4)
        for src, dst in _probe_pairs(hx2mesh_4x4):
            table.pair_slice(src, dst)
        handle = table.share()
        proc = mp.get_context("spawn").Process(
            target=_child_attach_and_crash, args=(handle,)
        )
        proc.start()
        proc.join(timeout=120)
        assert proc.exitcode == 1
        # The segment must still exist and carry the same bytes.
        reattached = RouteTable.attach(handle)
        first, count = table.pair_slice(*_probe_pairs(hx2mesh_4x4)[0])
        assert reattached.pair_slice(*_probe_pairs(hx2mesh_4x4)[0]) == (first, count)
        del reattached
        gc.collect()
        clear_route_tables()

    def test_owner_unlinks_segment_on_collection(self, torus_4x4_boards):
        """Dropping the owning table finalizes (unlinks) its segment."""
        clear_route_tables()
        table = route_table_for(torus_4x4_boards, max_paths=4)
        table.pair_slice(*_probe_pairs(torus_4x4_boards)[0])
        handle = table.share()
        seg = shared_memory.SharedMemory(name=handle.name)
        try:  # this open is a probe, not an owner: keep the tracker clean
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
        seg.close()
        del table
        clear_route_tables()
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)
