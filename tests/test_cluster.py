"""Tests for the event-driven cluster lifetime simulator (repro.cluster)
and the EventEngine cancellation/peek extensions it builds on."""

import numpy as np
import pytest

from repro.allocation import BoardGrid
from repro.cluster import (
    ClusterJob,
    ClusterSimConfig,
    ClusterSimulator,
    FailureModel,
    FixedServiceTime,
    FlowSimServiceTime,
    JobState,
    LogNormalServiceTime,
    NetworkCoupling,
    PoissonArrivals,
    Scheduler,
    TraceArrivals,
    interarrival_for_load,
)
from repro.sim import EventEngine


# --------------------------------------------------------------- EventEngine
class TestEventEngineCancellation:
    def test_schedule_returns_pending_handle(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda: None)
        assert handle.pending and not handle.cancelled
        assert handle.time == 1.0
        assert engine.pending_events == 1

    def test_cancelled_event_never_fires(self):
        engine = EventEngine()
        fired = []
        keep = engine.schedule(1.0, lambda: fired.append("keep"))
        drop = engine.schedule(0.5, lambda: fired.append("drop"))
        assert engine.cancel(drop) is True
        assert engine.pending_events == 1
        engine.run()
        assert fired == ["keep"]
        assert keep.pending is False

    def test_cancel_is_idempotent_and_safe(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda: None)
        assert engine.cancel(handle) is True
        assert engine.cancel(handle) is False   # already cancelled
        assert engine.cancel(None) is False     # no-op
        engine.run()
        assert engine.processed_events == 0

    def test_cancel_after_execution_is_noop(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        assert handle.pending is False
        assert engine.cancel(handle) is False

    def test_peek_skips_cancelled(self):
        engine = EventEngine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.peek() == 1.0
        engine.cancel(first)
        assert engine.peek() == 2.0
        assert engine.now == 0.0  # peek must not advance the clock

    def test_peek_empty(self):
        engine = EventEngine()
        assert engine.peek() is None
        handle = engine.schedule(3.0, lambda: None)
        engine.cancel(handle)
        assert engine.peek() is None

    def test_ordering_deterministic_with_cancellations(self):
        """Simultaneous events keep insertion order even around cancels."""
        engine = EventEngine()
        order = []
        handles = [
            engine.schedule(1.0, lambda i=i: order.append(i)) for i in range(6)
        ]
        engine.cancel(handles[1])
        engine.cancel(handles[4])
        engine.run()
        assert order == [0, 2, 3, 5]

    def test_run_until_with_cancelled_head(self):
        engine = EventEngine()
        fired = []
        head = engine.schedule(5.0, lambda: fired.append("head"))
        engine.schedule(10.0, lambda: fired.append("tail"))
        engine.cancel(head)
        engine.run(until=7.0)
        assert fired == [] and engine.now == 7.0

    def test_reset_clears_live_count(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        engine.reset()
        assert engine.pending_events == 0 and engine.peek() is None

    def test_cancel_of_pre_reset_handle_is_noop(self):
        engine = EventEngine()
        stale = engine.schedule(1.0, lambda: None)
        engine.reset()
        engine.schedule(1.0, lambda: None)
        assert engine.cancel(stale) is False  # must not touch the new event
        assert engine.pending_events == 1
        engine.run()
        assert engine.pending_events == 0


# ---------------------------------------------------------------- ClusterJob
class TestClusterJob:
    def test_work_accounting(self):
        job = ClusterJob(job_id=0, num_boards=4, arrival_time=0.0, service_time=100.0)
        assert job.work_remaining == 400.0
        assert job.begin(10.0) == 100.0
        job.interrupt(60.0)  # 50 s * 4 boards done
        assert job.work_remaining == pytest.approx(200.0)
        assert job.remaining_runtime() == pytest.approx(50.0)

    def test_restart_without_checkpoint_loses_work(self):
        job = ClusterJob(job_id=0, num_boards=2, arrival_time=0.0, service_time=100.0)
        job.begin(0.0)
        job.interrupt(50.0, checkpoint=False)
        assert job.work_remaining == pytest.approx(200.0)

    def test_shrink_scales_runtime(self):
        job = ClusterJob(job_id=0, num_boards=8, arrival_time=0.0, service_time=100.0)
        job.shrink(4)
        assert job.num_boards == 4 and job.shrinks == 1
        assert job.remaining_runtime() == pytest.approx(200.0)
        with pytest.raises(ValueError):
            job.shrink(4)  # must strictly shrink

    def test_slowdown_and_wait(self):
        job = ClusterJob(job_id=1, num_boards=1, arrival_time=100.0, service_time=50.0)
        job.begin(150.0)
        job.complete(210.0)
        assert job.wait_time == 50.0
        assert job.turnaround == 110.0
        assert job.slowdown == pytest.approx(110.0 / 50.0)
        assert job.state == JobState.COMPLETED


# ----------------------------------------------------------------- Scheduler
class TestScheduler:
    def _job(self, job_id, boards):
        return ClusterJob(
            job_id=job_id, num_boards=boards, arrival_time=0.0, service_time=1.0
        )

    def test_fcfs_blocks_behind_head(self):
        scheduler = Scheduler(BoardGrid(4, 4), "greedy", policy="fcfs")
        scheduler.submit(self._job(0, 12))  # 3x4, fits
        scheduler.submit(self._job(1, 16))  # 4x4, does not fit anymore
        scheduler.submit(self._job(2, 1))   # would fit, but FCFS blocks
        started = scheduler.dispatch()
        assert [job.job_id for job, _ in started] == [0]
        assert scheduler.queue_length == 2

    def test_backfill_jumps_blocked_head(self):
        scheduler = Scheduler(BoardGrid(4, 4), "greedy", policy="fcfs+backfill")
        scheduler.submit(self._job(0, 12))
        scheduler.submit(self._job(1, 16))
        scheduler.submit(self._job(2, 1))
        started = scheduler.dispatch()
        assert [job.job_id for job, _ in started] == [0, 2]
        assert [job.job_id for job in scheduler.pending_jobs()] == [1]

    def test_front_submit_for_evicted_jobs(self):
        scheduler = Scheduler(BoardGrid(4, 4), "greedy", policy="fcfs")
        scheduler.submit(self._job(0, 1))
        scheduler.submit(self._job(1, 1), front=True)
        assert [job.job_id for job in scheduler.pending_jobs()] == [1, 0]
        assert scheduler.queued_boards == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(BoardGrid(2, 2), policy="srpt")


# ------------------------------------------------------------ workload models
class TestWorkloadModels:
    def test_poisson_respects_cap(self):
        rng = np.random.default_rng(0)
        model = PoissonArrivals(mean_interarrival=10.0, max_job_boards=16)
        for _ in range(200):
            gap, size = model.next_arrival(rng)
            assert gap >= 0.0 and 1 <= size <= 16
        assert model.mean_job_boards() <= 16

    def test_trace_arrivals_exhaust(self):
        rng = np.random.default_rng(0)
        model = TraceArrivals([4, 9, 1], mean_interarrival=5.0)
        sizes = []
        while (drawn := model.next_arrival(rng)) is not None:
            sizes.append(drawn[1])
        assert sizes == [4, 9, 1]

    def test_interarrival_for_load(self):
        gap = interarrival_for_load(2.0, 256, 8.0, 1000.0)
        # offered load = mean_boards * mean_service / (gap * boards) == 2
        assert 8.0 * 1000.0 / (gap * 256) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            interarrival_for_load(0.0, 256, 8.0, 1000.0)

    def test_service_model_means(self):
        assert FixedServiceTime(120.0).mean() == 120.0
        lognormal = LogNormalServiceTime(900.0, 0.6)
        rng = np.random.default_rng(1)
        samples = [lognormal.sample(rng, 4) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(lognormal.mean(), rel=0.1)

    def test_flowsim_service_times(self, hx2mesh_4x4):
        model = FlowSimServiceTime.from_topology(
            hx2mesh_4x4, ("resnet152", "gpt3"), num_phases=4, max_paths=2,
            iteration_range=(100, 100),
        )
        assert len(model.iteration_times) == 2
        rng = np.random.default_rng(0)
        sample = model.sample(rng, 4)
        # exactly 100 iterations of one of the two workloads
        assert any(sample == pytest.approx(100 * t) for t in model.iteration_times)
        assert model.mean() == pytest.approx(100 * np.mean(model.iteration_times))


# ------------------------------------------------------------ full simulator
class TestClusterSimulator:
    def test_simple_run_completes_all_jobs(self):
        config = ClusterSimConfig(
            x=4, y=4, num_jobs=50, seed=3, service=FixedServiceTime(100.0),
            failures=None,
        )
        report = ClusterSimulator(config).run()
        assert len(report.jobs) == 50
        assert all(job.state == JobState.COMPLETED for job in report.jobs)
        summary = report.summary()
        assert summary["completed_jobs"] == 50
        assert 0.0 < summary["time_weighted_utilization"] <= 1.0
        assert summary["failures"] == 0

    def test_trace_driven_arrivals(self):
        arrivals = TraceArrivals([4, 4, 1, 9, 16], mean_interarrival=50.0)
        config = ClusterSimConfig(
            x=4, y=4, num_jobs=100, seed=0, arrivals=arrivals,
            service=FixedServiceTime(60.0), failures=None,
        )
        report = ClusterSimulator(config).run()
        assert [job.requested_boards for job in report.jobs] == [4, 4, 1, 9, 16]
        assert all(job.state == JobState.COMPLETED for job in report.jobs)

    def test_failures_evict_and_jobs_still_finish(self):
        config = ClusterSimConfig(
            x=8, y=8, num_jobs=200, seed=5, load=2.0,
            service=FixedServiceTime(3600.0),
            failures=FailureModel(mtbf_hours=5.0, mttr_hours=0.5),
        )
        report = ClusterSimulator(config).run()
        assert all(job.state == JobState.COMPLETED for job in report.jobs)
        assert report.metrics.num_failures > 0
        assert report.metrics.num_evictions > 0
        assert report.metrics.num_repairs <= report.metrics.num_failures
        evicted = [job for job in report.jobs if job.restarts > 0]
        assert evicted, "with MTBF 5h some job must have restarted"

    def test_shrink_eviction_reduces_board_count(self):
        config = ClusterSimConfig(
            x=8, y=8, num_jobs=200, seed=5, load=2.0,
            service=FixedServiceTime(3600.0),
            failures=FailureModel(mtbf_hours=5.0, mttr_hours=0.5, eviction="shrink"),
        )
        report = ClusterSimulator(config).run()
        shrunk = [job for job in report.jobs if job.shrinks > 0]
        assert shrunk
        for job in shrunk:
            assert job.num_boards < job.requested_boards
            assert job.state == JobState.COMPLETED

    def test_zero_jobs_run_is_empty(self):
        report = ClusterSimulator(ClusterSimConfig(num_jobs=0)).run()
        assert report.duration == 0.0 and report.jobs == []

    def test_unplaceable_job_raises_instead_of_hanging(self):
        # A 32-board job can never fit a 16-board grid; without failure
        # events the simulation would deadlock silently, so it must raise.
        arrivals = TraceArrivals([2, 32, 2], mean_interarrival=10.0)
        config = ClusterSimConfig(
            x=4, y=4, num_jobs=10, arrivals=arrivals,
            service=FixedServiceTime(10.0), failures=None,
        )
        with pytest.raises(RuntimeError, match="never be placed"):
            ClusterSimulator(config).run()

    def test_same_seed_same_fingerprint(self):
        config = ClusterSimConfig(
            x=8, y=8, num_jobs=150, seed=11,
            failures=FailureModel(mtbf_hours=40.0, mttr_hours=1.0),
        )
        a = ClusterSimulator(config).run()
        b = ClusterSimulator(config).run()
        assert a.fingerprint() == b.fingerprint()
        assert a.summary() == b.summary()

    def test_different_seed_different_fingerprint(self):
        base = ClusterSimConfig(x=8, y=8, num_jobs=150, seed=11)
        other = ClusterSimConfig(x=8, y=8, num_jobs=150, seed=12)
        assert (
            ClusterSimulator(base).run().fingerprint()
            != ClusterSimulator(other).run().fingerprint()
        )

    def test_acceptance_1000_jobs_with_failures(self):
        """ISSUE 1 acceptance: a deterministic seeded 1,000-job lifetime run
        on a 16x16 Hx2Mesh with arrivals, completions and failures, where
        the greedy+transpose+aspect preset beats plain greedy on
        time-weighted utilization."""
        service = LogNormalServiceTime(median_seconds=900.0, sigma=0.6)
        failures = FailureModel(mtbf_hours=80.0, mttr_hours=2.0)
        utilization = {}
        for preset in ("greedy", "greedy+transpose+aspect"):
            config = ClusterSimConfig(
                x=16, y=16, allocator=preset, policy="fcfs+backfill",
                num_jobs=1000, load=2.0, service=service, failures=failures,
                seed=7,
            )
            report = ClusterSimulator(config).run()
            assert len(report.jobs) == 1000
            assert all(job.state == JobState.COMPLETED for job in report.jobs)
            assert report.metrics.num_failures > 0
            summary = report.summary()
            utilization[preset] = summary["time_weighted_utilization"]
            assert 0.0 < summary["busy_utilization"] <= 1.0
            # determinism: a second run reproduces the exact history
            assert ClusterSimulator(config).run().fingerprint() == report.fingerprint()
        assert utilization["greedy+transpose+aspect"] > utilization["greedy"]


# ------------------------------------------------------------- FailureModel
class TestFailureModelValidation:
    def test_min_boards_zero_rejected(self):
        with pytest.raises(ValueError, match="min_boards"):
            FailureModel(mtbf_hours=40.0, min_boards=0)

    def test_shrink_target_floor(self):
        model = FailureModel(mtbf_hours=40.0, min_boards=2)
        assert model.shrink_target(16) == 8
        assert model.shrink_target(4) == 2
        assert model.shrink_target(3) == 2      # 3 // 2 == 1 < floor
        assert model.shrink_target(2) == 2      # already at floor

    def test_shrink_eviction_never_goes_below_floor(self):
        # Jobs request 4 boards; with min_boards=2 repeated shrink evictions
        # must never leave a job below 2 boards.
        arrivals = TraceArrivals([4] * 120, mean_interarrival=30.0)
        config = ClusterSimConfig(
            x=8, y=8, num_jobs=120, seed=5, arrivals=arrivals,
            service=FixedServiceTime(3600.0),
            failures=FailureModel(
                mtbf_hours=4.0, mttr_hours=0.5, eviction="shrink", min_boards=2,
            ),
        )
        report = ClusterSimulator(config).run()
        shrunk = [job for job in report.jobs if job.shrinks > 0]
        assert shrunk, "with MTBF 4h some job must have shrunk"
        for job in report.jobs:
            assert job.num_boards >= 2


# --------------------------------------------------------- network coupling
class TestNetworkCoupling:
    CONFIG = dict(
        x=4, y=4, num_jobs=60, seed=9, load=1.5,
        service=FixedServiceTime(1800.0),
        failures=FailureModel(mtbf_hours=8.0, mttr_hours=0.5),
    )

    def test_default_has_no_coupling(self):
        assert ClusterSimConfig().network is None

    def test_coupled_run_is_deterministic(self):
        config = ClusterSimConfig(network=NetworkCoupling(), **self.CONFIG)
        a = ClusterSimulator(config).run()
        b = ClusterSimulator(config).run()
        assert a.fingerprint() == b.fingerprint()
        assert all(job.state == JobState.COMPLETED for job in a.jobs)
        assert a.metrics.num_failures > 0

    def test_coupling_slows_surviving_jobs(self):
        # Board failures degrade fabric bandwidth, stretching service times:
        # an uninterrupted job takes exactly its 1800 s service time without
        # coupling, and strictly longer when it overlaps a degraded window.
        uncoupled = ClusterSimulator(ClusterSimConfig(**self.CONFIG)).run()
        coupled = ClusterSimulator(
            ClusterSimConfig(network=NetworkCoupling(), **self.CONFIG)
        ).run()
        assert coupled.fingerprint() != uncoupled.fingerprint()

        def clean_durations(report):
            return [
                job.finish_time - job.start_time
                for job in report.jobs
                if job.restarts == 0 and job.shrinks == 0
            ]

        for wall in clean_durations(uncoupled):
            assert wall == pytest.approx(1800.0)
        coupled_walls = clean_durations(coupled)
        assert all(wall >= 1800.0 - 1e-9 for wall in coupled_walls)
        assert max(coupled_walls) > 1800.0 + 1e-6

    def test_coupling_state_factor_bounds(self):
        state = NetworkCoupling().build_state(2, 2)
        assert state.factor == 1.0
        degraded = state.fail_board((0, 0))
        assert 0.0 < degraded < 1.0
        restored = state.repair_board((0, 0))
        assert degraded < restored <= 1.0
