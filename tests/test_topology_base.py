"""Unit tests for the core topology graph model."""

import pytest

from repro.topology import (
    CableClass,
    NodeKind,
    Topology,
    TopologyError,
    available_topologies,
    build_topology,
)


def make_line(n=3, capacity=1.0):
    topo = Topology("line")
    nodes = [topo.add_accelerator(f"a{i}") for i in range(n)]
    for a, b in zip(nodes, nodes[1:]):
        topo.add_link(a, b, capacity=capacity)
    return topo, nodes


class TestNodes:
    def test_node_ids_are_sequential(self):
        topo = Topology("t")
        ids = [topo.add_accelerator(f"a{i}") for i in range(5)]
        assert ids == list(range(5))

    def test_kinds_are_recorded(self):
        topo = Topology("t")
        acc = topo.add_accelerator("acc")
        sw = topo.add_switch("sw")
        assert topo.kind(acc) is NodeKind.ACCELERATOR
        assert topo.kind(sw) is NodeKind.SWITCH
        assert topo.is_accelerator(acc) and not topo.is_accelerator(sw)
        assert topo.is_switch(sw) and not topo.is_switch(acc)

    def test_accelerator_and_switch_lists(self):
        topo = Topology("t")
        accs = [topo.add_accelerator() for _ in range(3)]
        sws = [topo.add_switch() for _ in range(2)]
        assert list(topo.accelerators) == accs
        assert list(topo.switches) == sws
        assert topo.num_accelerators == 3
        assert topo.num_switches == 2

    def test_labels_and_attrs(self):
        topo = Topology("t")
        n = topo.add_accelerator("hello", coord=(1, 2))
        assert topo.label(n) == "hello"
        assert topo.attrs(n)["coord"] == (1, 2)

    def test_accelerator_index_is_dense(self):
        topo = Topology("t")
        topo.add_switch()
        a = topo.add_accelerator()
        topo.add_switch()
        b = topo.add_accelerator()
        assert topo.accelerator_index() == {a: 0, b: 1}


class TestLinks:
    def test_add_link_creates_two_directed_links(self):
        topo, nodes = make_line(2)
        assert topo.num_links == 2
        assert topo.find_links(nodes[0], nodes[1])
        assert topo.find_links(nodes[1], nodes[0])

    def test_link_attributes(self):
        topo = Topology("t")
        a, b = topo.add_accelerator(), topo.add_switch()
        i, _ = topo.add_link(a, b, capacity=2.5, cable=CableClass.AOC, plane=1, tag="x")
        link = topo.link(i)
        assert link.capacity == 2.5
        assert link.cable is CableClass.AOC
        assert link.plane == 1
        assert link.tag == "x"

    def test_self_link_rejected(self):
        topo = Topology("t")
        a = topo.add_accelerator()
        with pytest.raises(TopologyError):
            topo.add_directed_link(a, a)

    def test_out_of_range_rejected(self):
        topo = Topology("t")
        a = topo.add_accelerator()
        with pytest.raises(TopologyError):
            topo.add_directed_link(a, 42)

    def test_nonpositive_capacity_rejected(self):
        topo = Topology("t")
        a, b = topo.add_accelerator(), topo.add_accelerator()
        with pytest.raises(TopologyError):
            topo.add_link(a, b, capacity=0.0)

    def test_out_and_in_links(self):
        topo, nodes = make_line(3)
        assert len(topo.out_links(nodes[1])) == 2
        assert len(topo.in_links(nodes[1])) == 2
        assert len(topo.out_links(nodes[0])) == 1

    def test_neighbors_are_unique(self):
        topo = Topology("t")
        a, b = topo.add_accelerator(), topo.add_accelerator()
        topo.add_link(a, b)
        topo.add_link(a, b)  # parallel cable
        assert topo.neighbors(a) == [b]
        assert topo.degree(a) == 2

    def test_cable_census(self):
        topo = Topology("t")
        a, b, c = (topo.add_accelerator() for _ in range(3))
        topo.add_link(a, b, cable=CableClass.DAC)
        topo.add_link(b, c, cable=CableClass.AOC)
        topo.add_link(a, c, cable=CableClass.PCB, count_cable=False)
        assert topo.cable_count(CableClass.DAC) == 1
        assert topo.cable_count(CableClass.AOC) == 1
        assert topo.cable_count(CableClass.PCB) == 0

    def test_capacity_array(self):
        topo, _ = make_line(3, capacity=2.0)
        arr = topo.link_capacity_array()
        assert arr.shape == (4,)
        assert (arr == 2.0).all()


class TestValidation:
    def test_validate_rejects_disconnected_accelerator(self):
        topo = Topology("t")
        topo.add_accelerator()
        with pytest.raises(TopologyError):
            topo.validate()

    def test_is_connected(self):
        topo, _ = make_line(4)
        assert topo.is_connected()
        lonely = topo.add_accelerator()
        assert not topo.is_connected()
        assert lonely in topo.accelerators

    def test_to_networkx_roundtrip(self):
        topo, nodes = make_line(3)
        g = topo.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 4
        assert g.nodes[nodes[0]]["kind"] == "accelerator"


class TestRegistry:
    def test_registered_builders_exist(self):
        names = available_topologies()
        for expected in ("fattree", "torus2d", "dragonfly", "hyperx2d", "hammingmesh"):
            assert expected in names

    def test_build_topology_dispatch(self):
        topo = build_topology("fattree", num_accelerators=8)
        assert topo.num_accelerators == 8

    def test_unknown_topology_raises(self):
        with pytest.raises(TopologyError):
            build_topology("does-not-exist")
