"""Tests for HammingMesh construction, parameters, routing and sub-meshes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    HxMeshParams,
    HxMeshRouter,
    VirtualSubMesh,
    accelerator_coordinates,
    board_mesh_path,
    build_hammingmesh,
    find_submesh_rows,
    hx1mesh,
    hx2mesh,
    hx4mesh,
    is_valid_submesh,
    virtual_channel_of,
)
from repro.core.routing import MAX_VIRTUAL_CHANNELS
from repro.topology import TopologyError, bfs_diameter


class TestParams:
    def test_counts(self):
        p = hx2mesh(16, 16)
        assert p.num_accelerators == 1024
        assert p.num_boards == 256
        assert p.board_size == 4
        assert p.row_ports == 32
        assert p.col_ports == 32
        assert p.injection_capacity == pytest.approx(4.0)

    def test_names(self):
        assert hx2mesh(16, 16).name == "16x16 Hx2Mesh"
        assert hx4mesh(8, 8).name == "8x8 Hx4Mesh"
        assert HxMeshParams(a=2, b=4, x=3, y=3).name == "3x3 H2x4Mesh"

    def test_hx1_is_single_accelerator_boards(self):
        p = hx1mesh(4, 4)
        assert p.board_size == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(a=0, b=2, x=2, y=2),
            dict(a=2, b=2, x=1, y=1),
            dict(a=2, b=2, x=2, y=2, global_taper=0.0),
            dict(a=2, b=2, x=2, y=2, global_taper=1.5),
            dict(a=2, b=2, x=2, y=2, planes=0),
            dict(a=2, b=2, x=2, y=2, link_capacity=-1.0),
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            HxMeshParams(**kwargs)

    def test_with_taper(self):
        p = hx2mesh(4, 4).with_taper(0.5)
        assert p.global_taper == 0.5 and p.x == 4

    def test_board_of(self):
        p = hx2mesh(4, 4)
        assert p.board_of(0) == (0, 0)
        assert p.board_of(4) == (0, 1)
        assert p.board_of(p.num_accelerators - 1) == (3, 3)
        with pytest.raises(ValueError):
            p.board_of(p.num_accelerators)


class TestConstruction:
    def test_counts(self, hx2mesh_4x4):
        assert hx2mesh_4x4.num_accelerators == 64
        # 4 rows x 2 on-board rows + 4 cols x 2 on-board cols, single switch each
        assert hx2mesh_4x4.num_switches == 16

    def test_every_accelerator_has_four_ports(self, hx2mesh_4x4):
        for acc in hx2mesh_4x4.accelerators:
            assert hx2mesh_4x4.degree(acc) == 4

    def test_coordinates_roundtrip(self, hx2mesh_4x4):
        for acc in hx2mesh_4x4.accelerators:
            gr, gc, br, bc = accelerator_coordinates(hx2mesh_4x4, acc)
            board = hx2mesh_4x4.meta["boards"][(gr, gc)]
            assert board.node_at(br, bc) == acc

    def test_coordinates_reject_switches(self, hx2mesh_4x4):
        with pytest.raises(TopologyError):
            accelerator_coordinates(hx2mesh_4x4, hx2mesh_4x4.switches[0])

    def test_rectangular_boards(self, hx4mesh_2x3):
        params = hx4mesh_2x3.meta["params"]
        assert params.x == 2 and params.y == 3
        assert hx4mesh_2x3.num_accelerators == 96

    def test_single_board_rejected(self):
        with pytest.raises((TopologyError, ValueError)):
            build_hammingmesh(2, 2, 1, 1)

    def test_diameter_matches_paper_formula(self, hx2mesh_4x4):
        from repro.topology import analytic_diameter

        assert analytic_diameter(hx2mesh_4x4) == 4
        assert bfs_diameter(hx2mesh_4x4, sources=list(hx2mesh_4x4.accelerators)[:8]) == 4

    def test_row_networks_connect_edge_ports(self, hx2mesh_4x4):
        nets = hx2mesh_4x4.meta["row_networks"]
        assert len(nets) == 8  # 4 board rows x 2 on-board rows
        for (gr, br), net in nets.items():
            assert len(net.attachments) == 2 * 4  # 2 ports per board, x=4 boards


class TestBoardMeshPath:
    def test_straight_line(self, hx2mesh_4x4):
        board = hx2mesh_4x4.meta["boards"][(0, 0)]
        path = board_mesh_path(board, (0, 0), (0, 1), "xy")
        assert len(path) == 1

    def test_xy_and_yx_differ(self, hx4mesh_2x3):
        board = hx4mesh_2x3.meta["boards"][(0, 0)]
        p_xy = board_mesh_path(board, (0, 0), (2, 2), "xy")
        p_yx = board_mesh_path(board, (0, 0), (2, 2), "yx")
        assert len(p_xy) == len(p_yx) == 4
        assert p_xy != p_yx

    def test_identity(self, hx2mesh_4x4):
        board = hx2mesh_4x4.meta["boards"][(0, 0)]
        assert board_mesh_path(board, (1, 1), (1, 1)) == []

    def test_invalid_order(self, hx2mesh_4x4):
        board = hx2mesh_4x4.meta["boards"][(0, 0)]
        with pytest.raises(ValueError):
            board_mesh_path(board, (0, 0), (1, 1), "zz")


class TestRouting:
    def _check_path(self, topo, src, dst, path):
        """A path must start at src, end at dst, and be link-connected."""
        node = src
        for li in path:
            link = topo.link(li)
            assert link.src == node
            node = link.dst
        assert node == dst

    def test_same_board_paths(self, hx2mesh_4x4):
        router = HxMeshRouter(hx2mesh_4x4)
        board = hx2mesh_4x4.meta["boards"][(1, 1)]
        src, dst = board.node_at(0, 0), board.node_at(1, 1)
        for path in router.paths(src, dst):
            self._check_path(hx2mesh_4x4, src, dst, path)
            assert len(path) == 2

    def test_same_row_paths_cross_one_network(self, hx2mesh_4x4):
        router = HxMeshRouter(hx2mesh_4x4)
        b0 = hx2mesh_4x4.meta["boards"][(2, 0)]
        b3 = hx2mesh_4x4.meta["boards"][(2, 3)]
        src, dst = b0.node_at(0, 0), b3.node_at(1, 1)
        paths = router.paths(src, dst, max_paths=8)
        assert paths
        for path in paths:
            self._check_path(hx2mesh_4x4, src, dst, path)
            switches = [li for li in path if hx2mesh_4x4.is_switch(hx2mesh_4x4.link(li).dst)]
            assert len(switches) == 1  # exactly one global network crossed

    def test_two_dimension_paths_cross_two_networks(self, hx2mesh_4x4):
        router = HxMeshRouter(hx2mesh_4x4)
        b_src = hx2mesh_4x4.meta["boards"][(0, 0)]
        b_dst = hx2mesh_4x4.meta["boards"][(3, 3)]
        src, dst = b_src.node_at(0, 0), b_dst.node_at(1, 1)
        paths = router.paths(src, dst, max_paths=8)
        assert paths
        for path in paths:
            self._check_path(hx2mesh_4x4, src, dst, path)
            switch_entries = [
                li for li in path if hx2mesh_4x4.is_switch(hx2mesh_4x4.link(li).dst)
            ]
            assert len(switch_entries) == 2

    def test_all_pairs_have_paths(self, hx4mesh_2x3):
        router = HxMeshRouter(hx4mesh_2x3)
        accs = list(hx4mesh_2x3.accelerators)[::7]
        for src in accs:
            for dst in accs:
                if src == dst:
                    continue
                paths = router.paths(src, dst)
                assert paths
                for path in paths:
                    self._check_path(hx4mesh_2x3, src, dst, path)

    def test_hx1mesh_routing(self, hx1mesh_4x4):
        router = HxMeshRouter(hx1mesh_4x4)
        accs = list(hx1mesh_4x4.accelerators)
        paths = router.paths(accs[0], accs[-1], max_paths=4)
        assert paths
        for path in paths:
            self._check_path(hx1mesh_4x4, accs[0], accs[-1], path)

    def test_minimal_slack_zero_keeps_only_shortest(self, hx2mesh_4x4):
        router = HxMeshRouter(hx2mesh_4x4)
        accs = list(hx2mesh_4x4.accelerators)
        for src, dst in [(accs[0], accs[5]), (accs[3], accs[60])]:
            paths = router.paths(src, dst, max_paths=8)
            assert max(len(p) for p in paths) - min(len(p) for p in paths) <= 0

    def test_virtual_channels_bounded(self, hx2mesh_4x4):
        router = HxMeshRouter(hx2mesh_4x4)
        accs = list(hx2mesh_4x4.accelerators)
        for dst in accs[1:20]:
            for path in router.paths(accs[0], dst, max_paths=4):
                vcs = virtual_channel_of(hx2mesh_4x4, path)
                assert len(vcs) == len(path)
                assert all(0 <= vc < MAX_VIRTUAL_CHANNELS for vc in vcs)
                assert vcs == sorted(vcs)  # VCs never decrease along a path

    def test_router_rejects_foreign_topology(self, fat_tree_64):
        with pytest.raises(TopologyError):
            HxMeshRouter(fat_tree_64)


class TestSubMesh:
    def test_valid_submesh_property(self):
        assert is_valid_submesh([(0, 0), (0, 2), (3, 0), (3, 2)])
        assert not is_valid_submesh([(0, 0), (0, 2), (3, 0)])
        assert not is_valid_submesh([])

    def test_submesh_accessors(self):
        sm = VirtualSubMesh(rows=(1, 3), cols=(0, 2, 5))
        assert sm.shape == (2, 3)
        assert sm.num_boards == 6
        assert sm.physical(1, 2) == (3, 5)
        assert sm.virtual((3, 5)) == (1, 2)
        assert (1, 2) in sm and (2, 2) not in sm
        with pytest.raises(KeyError):
            sm.virtual((9, 9))

    def test_find_submesh_simple(self):
        avail = [frozenset(range(4)) for _ in range(4)]
        sm = find_submesh_rows(avail, 2, 3)
        assert sm is not None
        assert sm.shape == (2, 3)
        assert is_valid_submesh(sm.boards())

    def test_find_submesh_with_holes(self):
        # Row 1 misses column 1; a 2x2 must avoid it or skip the row.
        avail = [
            frozenset({0, 1, 2, 3}),
            frozenset({0, 2, 3}),
            frozenset({0, 1, 2, 3}),
        ]
        sm = find_submesh_rows(avail, 3, 3)
        assert sm is not None
        assert 1 not in sm.cols or 1 not in sm.rows

    def test_find_submesh_failure(self):
        avail = [frozenset({0}), frozenset({1})]
        assert find_submesh_rows(avail, 2, 1) is None

    def test_find_submesh_validates_args(self):
        with pytest.raises(ValueError):
            find_submesh_rows([frozenset({0})], 0, 1)

    @given(
        rows=st.integers(2, 8),
        cols=st.integers(2, 8),
        u=st.integers(1, 4),
        v=st.integers(1, 4),
        holes=st.sets(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_found_submeshes_are_always_valid(self, rows, cols, u, v, holes):
        avail = [
            frozenset(c for c in range(cols) if (r, c) not in holes) for r in range(rows)
        ]
        sm = find_submesh_rows(avail, u, v, try_all_starts=True)
        if sm is not None:
            assert sm.shape == (u, v)
            assert is_valid_submesh(sm.boards())
            for r, c in sm.boards():
                assert c in avail[r]
