"""Tests for the pluggable routing-policy layer (`repro.sim.policy`).

Covers: the policy registry, bit-identical minimal-policy parity on every
topology family, candidate-set structure of ECMP / Valiant / UGAL, the
adversarial traffic generator, policy threading through route tables,
both simulators, the backends and the experiment engine, and the
route-cache invalidation semantics of ``clear_route_tables``.
"""

import numpy as np
import pytest

from repro.sim import (
    EcmpPolicy,
    FlowSimulator,
    MinimalPolicy,
    PacketNetwork,
    PacketSimConfig,
    RouteTable,
    RoutingPolicy,
    UgalPolicy,
    ValiantPolicy,
    adversarial_permutation,
    available_policies,
    clear_route_tables,
    get_backend,
    get_policy,
    path_provider_for,
    random_permutation,
    route_table_for,
    valiant_paths,
)


def check_path(topo, src, dst, path):
    node = src
    for li in path:
        link = topo.link(li)
        assert link.src == node
        node = link.dst
    assert node == dst


def sample_pairs(topo, num=20, seed=0):
    rng = np.random.default_rng(seed)
    accs = list(topo.accelerators)
    pairs = []
    for _ in range(num):
        s, d = rng.choice(len(accs), size=2, replace=False)
        pairs.append((accs[int(s)], accs[int(d)]))
    return pairs


class TestPolicyRegistry:
    def test_registered_policies(self):
        assert available_policies() == ["ecmp", "minimal", "ugal", "valiant"]

    def test_get_policy_resolution(self):
        assert isinstance(get_policy(None), MinimalPolicy)
        assert isinstance(get_policy("minimal"), MinimalPolicy)
        assert isinstance(get_policy("ecmp"), EcmpPolicy)
        assert isinstance(get_policy("valiant"), ValiantPolicy)
        assert isinstance(get_policy("ugal"), UgalPolicy)
        instance = ValiantPolicy(seed=7)
        assert get_policy(instance) is instance

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            get_policy("bogus")

    def test_cache_keys_distinguish_parameterizations(self):
        assert ValiantPolicy(seed=0).cache_key() != ValiantPolicy(seed=1).cache_key()
        assert MinimalPolicy().cache_key() == get_policy(None).cache_key()
        assert UgalPolicy().selects_group and not ValiantPolicy().selects_group


class TestMinimalParity:
    def test_minimal_policy_table_matches_provider_on_all_families(
        self, all_small_topologies
    ):
        """policy="minimal" serves exactly the provider's paths with 1/k
        weights — the pre-policy behaviour, bit for bit."""
        for family, topo in all_small_topologies.items():
            provider = path_provider_for(topo)
            table = RouteTable(topo, max_paths=4, policy="minimal")
            for s, d in sample_pairs(topo, num=15, seed=3):
                expected = provider.paths(s, d, max_paths=4)
                assert table.paths(s, d) == expected, family
                weights = table.pair_weights(s, d)
                assert weights == [1.0 / len(expected)] * len(expected)

    def test_minimal_policy_rates_bit_identical_on_all_families(
        self, all_small_topologies
    ):
        for family, topo in all_small_topologies.items():
            flows = random_permutation(topo.num_accelerators, seed=5)
            default = FlowSimulator(topo, max_paths=4).maxmin_rates(flows).flow_rates
            minimal = (
                FlowSimulator(topo, max_paths=4, policy="minimal")
                .maxmin_rates(flows)
                .flow_rates
            )
            np.testing.assert_array_equal(default, minimal, err_msg=family)

    def test_default_table_is_the_minimal_policy_table(self, hx2mesh_4x4):
        clear_route_tables()
        assert route_table_for(hx2mesh_4x4, max_paths=4) is route_table_for(
            hx2mesh_4x4, max_paths=4, policy="minimal"
        )


class TestCandidateStructure:
    def test_ecmp_single_minimal_path(self, all_small_topologies):
        for family, topo in all_small_topologies.items():
            provider = path_provider_for(topo)
            table = RouteTable(topo, max_paths=4, policy="ecmp")
            for s, d in sample_pairs(topo, num=10, seed=1):
                paths = table.paths(s, d)
                assert len(paths) == 1, family
                assert paths[0] in provider.paths(s, d, max_paths=4)
                assert table.pair_weights(s, d) == [1.0]

    def test_valiant_paths_are_valid_nonminimal_detours(self, all_small_topologies):
        for family, topo in all_small_topologies.items():
            provider = path_provider_for(topo)
            for s, d in sample_pairs(topo, num=8, seed=2):
                minimal_len = min(
                    len(p) for p in provider.paths(s, d, max_paths=4)
                )
                detours = valiant_paths(provider, s, d, max_paths=4, seed=0)
                assert detours, family
                for path in detours:
                    check_path(topo, s, d, path)
                    assert len(path) >= minimal_len, family

    def test_valiant_deterministic_per_seed(self, hx2mesh_4x4):
        provider = path_provider_for(hx2mesh_4x4)
        s, d = sample_pairs(hx2mesh_4x4, num=1, seed=9)[0]
        assert valiant_paths(provider, s, d, seed=3) == valiant_paths(
            provider, s, d, seed=3
        )

    def test_ugal_stores_minimal_prefix_plus_alternates(self, hx2mesh_4x4):
        provider = path_provider_for(hx2mesh_4x4)
        table = RouteTable(hx2mesh_4x4, max_paths=8, policy="ugal")
        for s, d in sample_pairs(hx2mesh_4x4, num=10, seed=4):
            paths = table.paths(s, d)
            assert len(paths) <= 8
            first, count = table.pair_slice(s, d)
            nmin = int(
                table.pair_minimal_counts(np.array([s]), np.array([d]))[0]
            )
            assert 1 <= nmin <= (8 + 1) // 2
            minimal = provider.paths(s, d, max_paths=(8 + 1) // 2)
            assert paths[:nmin] == minimal
            weights = table.pair_weights(s, d)
            assert weights[:nmin] == [1.0 / nmin] * nmin
            assert all(w == 0.0 for w in weights[nmin:])
            for path in paths:
                check_path(hx2mesh_4x4, s, d, path)

    def test_tables_memoized_per_policy(self, hx2mesh_4x4):
        clear_route_tables()
        minimal = route_table_for(hx2mesh_4x4, max_paths=4)
        valiant = route_table_for(hx2mesh_4x4, max_paths=4, policy="valiant")
        assert minimal is not valiant
        assert route_table_for(hx2mesh_4x4, max_paths=4, policy="valiant") is valiant
        assert (
            route_table_for(hx2mesh_4x4, max_paths=4, policy=ValiantPolicy(seed=9))
            is not valiant
        )


class TestAdversarialTraffic:
    def test_valid_on_every_family(self, all_small_topologies):
        for family, topo in all_small_topologies.items():
            flows = adversarial_permutation(topo)
            assert flows, family
            assert all(f.src != f.dst for f in flows)
            # a (possibly partial) permutation: distinct sources and sinks
            assert len({f.src for f in flows}) == len(flows)
            assert len({f.dst for f in flows}) == len(flows)
            ranks = range(topo.num_accelerators)
            assert all(f.src in ranks and f.dst in ranks for f in flows)

    def test_hammingmesh_adversary_is_a_hot_row_job(self, hx2mesh_4x4):
        coord_of = hx2mesh_4x4.meta["coord_of"]
        accs = list(hx2mesh_4x4.accelerators)
        flows = adversarial_permutation(hx2mesh_4x4)
        # partial: only global row 0 participates, shifted along the row
        assert len(flows) < hx2mesh_4x4.num_accelerators
        for f in flows:
            sgr, sgc, sbr, sbc = coord_of[accs[f.src]]
            dgr, dgc, dbr, dbc = coord_of[accs[f.dst]]
            assert sgr == dgr == 0
            assert sgc != dgc
            assert (sbr, sbc) == (dbr, dbc)


class TestPolicySimulation:
    def test_ugal_beats_minimal_on_tapered_hxmesh_adversary(self):
        """The acceptance-criterion scenario: adversarial permutation
        traffic on a tapered HxMesh, where UGAL's congestion-aware
        detours recover the bandwidth minimal routing cannot reach."""
        from repro.analysis.figures import _routing_policy_topo

        topo = _routing_policy_topo("hx4mesh_tapered")
        adv = adversarial_permutation(topo)
        dsts = np.array([f.dst for f in adv])

        def worst(policy):
            model = get_backend("flow", topo, max_paths=8, policy=policy)
            return float(model.permutation_sample(adv)[dsts].min())

        assert worst("ugal") >= 1.5 * worst("minimal")

    def test_valiant_beats_minimal_on_classic_adversaries(
        self, torus_4x4_boards, hyperx_4x4
    ):
        for topo in (torus_4x4_boards, hyperx_4x4):
            adv = adversarial_permutation(topo)
            dsts = np.array([f.dst for f in adv])
            rates = {}
            for pol in ("minimal", "valiant", "ugal"):
                model = get_backend("flow", topo, max_paths=8, policy=pol)
                rates[pol] = float(model.permutation_sample(adv)[dsts].min())
            assert rates["valiant"] > rates["minimal"], topo.name
            assert rates["ugal"] >= rates["minimal"], topo.name

    def test_ugal_stays_minimal_when_uncongested(self):
        """A single flow cannot congest anything: UGAL must route it
        exactly like the minimal policy on every study topology (its own
        load must not read as congestion — no gratuitous misrouting)."""
        from repro.analysis.figures import _routing_policy_topo
        from repro.sim.traffic import Flow

        for key in ("hx2mesh", "hx4mesh_tapered", "torus", "hyperx", "dragonfly"):
            topo = _routing_policy_topo(key)
            flows = [Flow(0, topo.num_accelerators - 1)]
            minimal = FlowSimulator(topo, max_paths=8, policy="minimal")
            ugal = FlowSimulator(topo, max_paths=8, policy="ugal")
            asg_ugal = ugal.assign(flows)
            # only the minimal group is selected (UGAL stores it first)
            nmin = ugal.table.pair_minimal_counts(
                np.array([topo.accelerators[0]]),
                np.array([topo.accelerators[-1]]),
            )
            assert asg_ugal.num_subflows == int(nmin[0]), key
            r_min = minimal.maxmin_rates(flows).flow_rates
            r_ugal = ugal.maxmin_rates(flows).flow_rates
            np.testing.assert_allclose(r_ugal, r_min, rtol=1e-12, err_msg=key)

    def test_explicit_table_policy_conflict_raises(self, hx2mesh_4x4):
        table = RouteTable(hx2mesh_4x4, max_paths=4, policy="valiant")
        with pytest.raises(ValueError, match="different routing policy"):
            FlowSimulator(hx2mesh_4x4, table=table, policy="minimal")
        # matching policy is fine
        sim = FlowSimulator(hx2mesh_4x4, table=table, policy="valiant")
        assert sim.policy.name == "valiant"

    def test_packet_simulator_candidates_follow_policy(self, hx2mesh_4x4):
        clear_route_tables()
        accs = list(hx2mesh_4x4.accelerators)
        s, d = accs[0], accs[37]
        provider = path_provider_for(hx2mesh_4x4)
        minimal_set = {
            tuple(p) for p in provider.paths(s, d, max_paths=4)
        }
        ecmp_net = PacketNetwork(
            hx2mesh_4x4, config=PacketSimConfig(max_paths=4, policy="ecmp")
        )
        ecmp_paths = ecmp_net.table.pair_path_lists(s, d, max_paths=4)
        assert len(ecmp_paths) == 1 and tuple(ecmp_paths[0]) in minimal_set
        valiant_net = PacketNetwork(
            hx2mesh_4x4, config=PacketSimConfig(max_paths=4, policy="valiant")
        )
        for path in valiant_net.table.pair_path_lists(s, d, max_paths=4):
            check_path(hx2mesh_4x4, s, d, path)
        assert valiant_net.table is not ecmp_net.table

    @pytest.mark.parametrize("policy", ["minimal", "ecmp", "valiant", "ugal"])
    def test_packet_runs_complete_under_every_policy(self, hx2mesh_4x4, policy):
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=2)[:16]
        net = PacketNetwork(
            hx2mesh_4x4, config=PacketSimConfig(max_paths=4, policy=policy)
        )
        net.send_flows(flows, 4096)
        result = net.run()
        assert result.all_finished
        assert all(m.observed_bandwidth() > 0 for m in result.messages)


class TestBackendsAndEngine:
    def test_backends_accept_policy_by_name(self, hx2mesh_4x4):
        flow = get_backend("flow", hx2mesh_4x4, max_paths=4, policy="valiant")
        assert flow.policy.name == "valiant"
        packet = get_backend("packet", hx2mesh_4x4, max_paths=4, policy="ugal")
        assert packet.policy.name == "ugal"
        assert packet.config.policy == "ugal"
        analytic = get_backend("analytic", hx2mesh_4x4, policy="valiant")
        assert analytic.policy.name == "valiant"
        with pytest.raises(ValueError, match="unknown routing policy"):
            get_backend("flow", hx2mesh_4x4, policy="bogus")

    def test_measurements_thread_policy(self, hx2mesh_4x4):
        from repro.analysis import measure_permutation_fractions

        minimal = measure_permutation_fractions(
            hx2mesh_4x4, num_permutations=1, max_paths=4, seed=3, policy="minimal"
        )
        default = measure_permutation_fractions(
            hx2mesh_4x4, num_permutations=1, max_paths=4, seed=3
        )
        np.testing.assert_array_equal(minimal, default)
        ecmp = measure_permutation_fractions(
            hx2mesh_4x4, num_permutations=1, max_paths=4, seed=3, policy="ecmp"
        )
        assert float(ecmp.mean()) <= float(minimal.mean())

    def test_policy_enters_scenario_content_hash(self):
        from repro.analysis.figures import routing_policy_cell
        from repro.exp import Scenario
        from repro.exp.scenario import kernel_ref

        ref = kernel_ref(routing_policy_cell)
        a = Scenario(ref, {"topo_key": "hx2mesh", "policy": "minimal"})
        b = Scenario(ref, {"topo_key": "hx2mesh", "policy": "ugal"})
        assert a.content_hash() != b.content_hash()

    def test_routing_policy_sweep_registered(self):
        from repro.exp.registry import get_sweep

        spec = get_sweep("routing_policy_sweep")
        assert spec.artifact == "routing_policies"
        assert spec.accepts("policies") and spec.accepts("topo_keys")

    def test_routing_policy_sweep_smoke(self):
        from repro.analysis import routing_policy_sweep

        data = routing_policy_sweep(
            topo_keys=("hx2mesh",), policies=("minimal", "ugal"), num_random=1
        )
        entry = data["hx2mesh"]
        assert set(entry) == {"minimal", "ugal"}
        # the untapered Hx2Mesh's single-switch trees are non-blocking, so
        # the tornado congests nothing and UGAL must match minimal exactly
        assert entry["ugal"]["adversarial_worst"] == pytest.approx(
            entry["minimal"]["adversarial_worst"], rel=1e-9
        )


class TestCacheInvalidation:
    def test_clear_route_tables_clears_assignment_lru(self, hx2mesh_4x4):
        """Regression: a policy/table reset must not serve stale routes out
        of the FlowAssignment LRU or the memoized pair_path_lists."""
        clear_route_tables()
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=6)
        asg = sim.assign(flows)
        assert sim.assign(flows) is asg  # LRU serves the repeat
        accs = list(hx2mesh_4x4.accelerators)
        lists = sim.table.pair_path_lists(accs[0], accs[5])
        assert sim.table.pair_path_lists(accs[0], accs[5]) is lists

        clear_route_tables()
        # the simulator's LRU is gone ...
        assert len(sim._assignments) == 0
        fresh = sim.assign(flows)
        assert fresh is not asg
        # ... and so is the table's materialized path-list memo
        assert sim.table.pair_path_lists(accs[0], accs[5]) is not lists
        # a new simulator gets a brand-new table
        assert FlowSimulator(hx2mesh_4x4, max_paths=4).table is not sim.table

    def test_clear_route_tables_clears_packet_scoring_state(self, hx2mesh_4x4):
        net = PacketNetwork(hx2mesh_4x4, config=PacketSimConfig(max_paths=4))
        net.send(0, 5, 4096)
        net.run()
        assert net._pair_scoring
        clear_route_tables()
        assert not net._pair_scoring


class TestDefaultMaxPaths:
    def test_single_shared_constant(self):
        from repro.sim import DEFAULT_MAX_PATHS
        from repro.sim.paths import DEFAULT_MAX_PATHS as paths_default
        import inspect

        from repro.sim.paths import GenericPathProvider
        from repro.sim.routing import RouteTable, route_table_for

        assert DEFAULT_MAX_PATHS is paths_default
        assert (
            inspect.signature(GenericPathProvider.paths).parameters["max_paths"].default
            == DEFAULT_MAX_PATHS
        )
        assert (
            inspect.signature(RouteTable.__init__).parameters["max_paths"].default
            == DEFAULT_MAX_PATHS
        )
        assert (
            inspect.signature(route_table_for).parameters["max_paths"].default
            == DEFAULT_MAX_PATHS
        )
        assert PacketSimConfig().max_paths == DEFAULT_MAX_PATHS
