"""Tests for collective algorithms: Hamiltonian cycles, rings, 2D torus,
alltoall, schedules and alpha-beta cost models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

import repro.collectives as C
from repro.core import build_hammingmesh
from repro.sim import FlowSimulator
from repro.topology import build_fat_tree, build_torus2d


class TestHamiltonianCycles:
    @pytest.mark.parametrize("shape", [(4, 4), (8, 4), (9, 3), (16, 8), (32, 32)])
    def test_paper_shapes(self, shape):
        """The Figure 16 example shapes all admit edge-disjoint cycles."""
        rows, cols = shape
        red, green = C.disjoint_hamiltonian_cycles(rows, cols)
        assert C.is_hamiltonian_cycle(red, rows, cols)
        assert C.is_hamiltonian_cycle(green, rows, cols)
        assert C.are_edge_disjoint(red, green)

    def test_unsupported_shapes_raise(self):
        with pytest.raises(ValueError):
            C.disjoint_hamiltonian_cycles(6, 4)  # gcd(6,3) != 1
        with pytest.raises(ValueError):
            C.disjoint_hamiltonian_cycles(5, 3)  # 5 not a multiple of 3

    def test_supports_predicate(self):
        assert C.supports_disjoint_cycles(8, 4)
        assert not C.supports_disjoint_cycles(8, 2)
        assert not C.supports_disjoint_cycles(6, 4)
        assert not C.supports_disjoint_cycles(2, 2)

    @given(
        cols=st.integers(3, 8),
        k=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_construction_valid_whenever_supported(self, cols, k):
        rows = cols * k
        if not C.supports_disjoint_cycles(rows, cols):
            return
        red, green = C.disjoint_hamiltonian_cycles(rows, cols)
        assert C.is_hamiltonian_cycle(red, rows, cols)
        assert C.is_hamiltonian_cycle(green, rows, cols)
        assert C.are_edge_disjoint(red, green)

    def test_cycle_edges_count(self):
        red, _ = C.disjoint_hamiltonian_cycles(4, 4)
        assert len(C.cycle_edges(red)) == 16

    @pytest.mark.parametrize("shape", [(4, 4), (5, 4), (4, 5), (6, 8), (9, 3)])
    def test_boustrophedon_fallback(self, shape):
        rows, cols = shape
        cycle = C.boustrophedon_cycle(rows, cols)
        assert C.is_hamiltonian_cycle(cycle, rows, cols)

    def test_boustrophedon_unsupported(self):
        with pytest.raises(ValueError):
            C.boustrophedon_cycle(5, 7)

    def test_is_hamiltonian_rejects_bad_cycles(self):
        assert not C.is_hamiltonian_cycle([(0, 0), (0, 1)], 2, 2)
        assert not C.is_hamiltonian_cycle([(0, 0), (0, 1), (1, 1), (0, 0)], 2, 2)


class TestRingEmbeddings:
    def test_natural_ring(self):
        assert C.natural_ring_order(5) == [0, 1, 2, 3, 4]

    def test_grid_ring_orders_on_hxmesh(self, hx2mesh_4x4):
        orders = C.ring_orders_for(hx2mesh_4x4)
        p = hx2mesh_4x4.num_accelerators
        assert len(orders) == 2  # edge-disjoint pair on the 8x8 grid
        for order in orders:
            assert sorted(order) == list(range(p))

    def test_grid_ring_orders_on_torus(self, torus_4x4_boards):
        orders = C.ring_orders_for(torus_4x4_boards)
        assert len(orders) == 2

    def test_switched_topologies_get_single_ring(self, fat_tree_64):
        orders = C.ring_orders_for(fat_tree_64)
        assert len(orders) == 1
        assert orders[0] == list(range(64))

    def test_ring_steady_flows(self):
        flows = C.ring_steady_flows([0, 1, 2], bidirectional=False)
        assert len(flows) == 3
        flows = C.ring_steady_flows([0, 1, 2], bidirectional=True)
        assert len(flows) == 6

    def test_dual_ring_flows_cover_four_ports(self, hx2mesh_4x4):
        orders = C.ring_orders_for(hx2mesh_4x4)
        flows = C.dual_ring_steady_flows(orders)
        # every accelerator appears exactly twice as source per ring
        from collections import Counter

        sends = Counter(f.src for f in flows)
        assert set(sends.values()) == {4}

    def test_hxmesh_dual_rings_sustain_full_port_rate(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        flows = C.dual_ring_steady_flows(C.ring_orders_for(hx2mesh_4x4))
        rate = sim.symmetric_rate(flows).min_rate
        assert rate == pytest.approx(1.0, abs=0.05)


class TestRingSchedule:
    def test_round_and_volume_structure(self):
        schedule = C.ring_allreduce_schedule([0, 1, 2, 3], size=4096, bidirectional=False)
        assert schedule.num_phases == 2 * 3
        # each rank sends one segment (size/p) per round
        assert schedule.phases[0][0].size == pytest.approx(1024)
        total = schedule.total_bytes()
        assert total == pytest.approx(2 * 3 * 4 * 1024)

    def test_bidirectional_halves_segments(self):
        schedule = C.ring_allreduce_schedule([0, 1, 2, 3], size=4096, bidirectional=True)
        assert schedule.phases[0][0].size == pytest.approx(512)

    def test_trivial_ring(self):
        assert C.ring_allreduce_schedule([0], size=100).num_phases == 0


class TestTorus2D:
    def test_square_grid_construction(self):
        alg = C.Torus2DAllreduce.square(16)
        assert alg.rows == alg.cols == 4
        with pytest.raises(ValueError):
            C.Torus2DAllreduce.square(12)

    def test_steady_flows_use_four_ports(self):
        alg = C.Torus2DAllreduce.square(16)
        flows = alg.steady_flows()
        from collections import Counter

        sends = Counter(f.src for f in flows)
        assert set(sends.values()) == {4}

    def test_schedule_phase_count(self):
        alg = C.Torus2DAllreduce.square(16)
        schedule = alg.schedule(size=1 << 20)
        # (cols-1) + 2*(rows-1) + (cols-1) phases
        assert schedule.num_phases == 3 + 6 + 3

    def test_for_topology(self, hx2mesh_4x4):
        alg = C.Torus2DAllreduce.for_topology(hx2mesh_4x4)
        assert alg.rows * alg.cols == hx2mesh_4x4.num_accelerators

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            C.Torus2DAllreduce(1, 4, {(0, c): c for c in range(4)})


class TestSchedules:
    def test_alphabeta_time_accumulates_phases(self):
        s = C.CommSchedule()
        s.add_phase([C.Transfer(0, 1, 1000.0)])
        s.add_phase([C.Transfer(1, 0, 1000.0)])
        t = s.time_alphabeta(alpha=1e-6, beta=1e-9)
        assert t == pytest.approx(2 * (1e-6 + 1e-6), rel=1e-6)

    def test_alphabeta_per_rank_serialisation(self):
        s = C.CommSchedule()
        s.add_phase([C.Transfer(0, 1, 1000.0), C.Transfer(0, 2, 1000.0)])
        t = s.time_alphabeta(alpha=0.0, beta=1e-9)
        assert t == pytest.approx(2e-6)

    def test_transfer_validation(self):
        with pytest.raises(ValueError):
            C.Transfer(1, 1, 10.0)
        with pytest.raises(ValueError):
            C.Transfer(0, 1, -1.0)

    def test_flowsim_timing_on_ring(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, max_paths=2)
        order = C.ring_orders_for(hx2mesh_4x4)[0]
        schedule = C.ring_allreduce_schedule(order, size=1 << 20, bidirectional=True)
        t = schedule.time_flowsim(sim, alpha=1e-6, bytes_per_unit=50e9)
        # bandwidth-optimal bound: 2 * (p-1)/p * S / (2 NICs * 50 GB/s)
        assert t > 0
        lower_bound = (1 << 20) / (2 * 50e9)
        assert t > lower_bound

    def test_balanced_shift_schedule(self):
        s = C.balanced_shift_schedule(4, total_size=3000.0)
        assert s.num_phases == 3
        assert s.phases[0][0].size == pytest.approx(1000.0)
        assert C.balanced_shift_schedule(1, 100).num_phases == 0


class TestCostModels:
    def test_known_formulas(self):
        p, s, a, b = 16, 1e6, 1e-6, 1e-9
        assert C.ring_allreduce_time(p, s, a, b) == pytest.approx(2 * p * a + 2 * s * b)
        assert C.bidirectional_ring_time(p, s, a, b) == pytest.approx(2 * p * a + s * b)
        assert C.dual_rings_time(p, s, a, b) == pytest.approx(2 * p * a + s * b / 2)
        expected_torus = 4 * 4 * a + s * b * (1 + 2 * 4) / (2 * 4)
        assert C.torus2d_allreduce_time(p, s, a, b) == pytest.approx(expected_torus)

    def test_tree_uses_log_stages(self):
        t = C.tree_allreduce_time(8, 1e6, 1e-6, 1e-9)
        assert t == pytest.approx(3 * 1e-6 + 3 * 1e-3)

    def test_trivial_group(self):
        for alg in C.ALGORITHMS:
            assert C.allreduce_time(alg, 1, 1e6, 1e-6, 1e-9) == 0.0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            C.allreduce_time("bogus", 4, 1.0, 1.0, 1.0)

    def test_rings_beat_torus_for_large_messages(self):
        p, a, b = 1024, 1e-6, 1e-9
        big = 1 << 30
        small = 1 << 14
        assert C.dual_rings_time(p, big, a, b) < C.torus2d_allreduce_time(p, big, a, b)
        assert C.torus2d_allreduce_time(p, small, a, b) < C.dual_rings_time(p, small, a, b)

    def test_bus_bandwidth_monotone_in_size(self):
        model = C.AllreduceModel("rings", 256, 1e-6, 1e-9)
        assert model.bus_bandwidth(1 << 26) > model.bus_bandwidth(1 << 16)

    @given(
        p=st.integers(2, 2048),
        size=st.floats(1.0, 1e9),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_dual_rings_never_slower_than_bidirectional(self, p, size):
        a, b = 1e-6, 1e-9
        assert C.dual_rings_time(p, size, a, b) <= C.bidirectional_ring_time(p, size, a, b) + 1e-12
