"""Shared fixtures: small topology instances reused across the test suite."""

from __future__ import annotations

import pytest

from repro.core import build_hammingmesh
from repro.topology import (
    build_dragonfly,
    build_fat_tree,
    build_hyperx2d,
    build_torus2d,
)


@pytest.fixture(scope="session")
def hx2mesh_4x4():
    """A 4x4 Hx2Mesh (64 accelerators, single-switch rows/columns)."""
    return build_hammingmesh(2, 2, 4, 4)


@pytest.fixture(scope="session")
def hx4mesh_2x3():
    """A rectangular 2x3 Hx4Mesh (96 accelerators)."""
    return build_hammingmesh(4, 4, 2, 3)


@pytest.fixture(scope="session")
def hx1mesh_4x4():
    """An Hx1Mesh / HyperX-equivalent with 1x1 boards."""
    return build_hammingmesh(1, 1, 4, 4)


@pytest.fixture(scope="session")
def fat_tree_64():
    """A 64-accelerator two-level nonblocking fat tree."""
    return build_fat_tree(64)


@pytest.fixture(scope="session")
def fat_tree_128_tapered():
    """A 128-accelerator fat tree with 75% tapering."""
    return build_fat_tree(128, taper=0.25)


@pytest.fixture(scope="session")
def dragonfly_small_fixture():
    """A small Dragonfly: 4 groups of 4 routers with 2 endpoints each."""
    return build_dragonfly(
        4, routers_per_group=4, endpoints_per_router=2, global_links_per_router=2
    )


@pytest.fixture(scope="session")
def torus_4x4_boards():
    """A 2D torus of 4x4 2x2-boards (8x8 accelerators)."""
    return build_torus2d(4, 4)


@pytest.fixture(scope="session")
def hyperx_4x4():
    """A switch-based 4x4 2D HyperX with one terminal per switch."""
    return build_hyperx2d(4, 4, terminals=1)


@pytest.fixture(scope="session")
def all_small_topologies(
    hx2mesh_4x4, fat_tree_64, dragonfly_small_fixture, torus_4x4_boards, hyperx_4x4
):
    """One representative of every topology family (small sizes)."""
    return {
        "hammingmesh": hx2mesh_4x4,
        "fattree": fat_tree_64,
        "dragonfly": dragonfly_small_fixture,
        "torus": torus_4x4_boards,
        "hyperx": hyperx_4x4,
    }
