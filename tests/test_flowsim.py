"""Tests for the flow-level max-min fair simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_hammingmesh
from repro.sim import Flow, FlowSimulator, random_permutation, ring_neighbor_flows
from repro.topology import Topology, build_fat_tree


def line_topology(capacities):
    """acc - sw - sw - ... - acc chain with the given link capacities."""
    topo = Topology("line")
    a = topo.add_accelerator("a")
    b = topo.add_accelerator("b")
    prev = a
    for i, cap in enumerate(capacities[:-1]):
        sw = topo.add_switch(f"s{i}")
        topo.add_link(prev, sw, capacity=cap)
        prev = sw
    topo.add_link(prev, b, capacity=capacities[-1])
    topo.meta["injection_capacity"] = max(capacities)
    return topo, a, b


class TestSymmetricRate:
    def test_single_flow_bottleneck(self):
        topo, a, b = line_topology([4.0, 1.0, 2.0])
        sim = FlowSimulator(topo)
        result = sim.symmetric_rate([Flow(0, 1)])
        assert result.min_rate == pytest.approx(1.0)
        assert topo.link(result.bottleneck_link).capacity == pytest.approx(1.0)

    def test_two_flows_share_a_link(self):
        topo = Topology("shared")
        a, b, c = (topo.add_accelerator() for _ in range(3))
        sw = topo.add_switch()
        topo.add_link(a, sw, capacity=2.0)
        topo.add_link(b, sw, capacity=2.0)
        topo.add_link(sw, c, capacity=2.0)
        sim = FlowSimulator(topo)
        result = sim.symmetric_rate([Flow(0, 2), Flow(1, 2)])
        # both flows share the sw->c link of capacity 2
        assert result.min_rate == pytest.approx(1.0)

    def test_demand_weighting(self):
        topo, a, b = line_topology([2.0, 2.0])
        sim = FlowSimulator(topo)
        result = sim.symmetric_rate([Flow(0, 1, demand=2.0)])
        # rate is per unit of demand: demand 2 on a capacity-2 path -> 2.0 total
        assert result.flow_rates[0] == pytest.approx(2.0)

    def test_rejects_self_flow(self, fat_tree_64):
        sim = FlowSimulator(fat_tree_64)
        with pytest.raises(ValueError):
            sim.symmetric_rate([Flow(0, 0)])

    def test_link_utilization_bounded(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=0)
        result = sim.symmetric_rate(flows)
        assert result.link_utilization.max() <= 1.0 + 1e-9


class TestMaxMin:
    def test_matches_symmetric_for_uniform_pattern(self, fat_tree_64):
        sim = FlowSimulator(fat_tree_64)
        flows = ring_neighbor_flows(list(range(64)))
        sym = sim.symmetric_rate(flows).min_rate
        mm = sim.maxmin_rates(flows)
        assert mm.flow_rates.min() == pytest.approx(sym, rel=1e-6)

    def test_unequal_paths_get_unequal_rates(self):
        # Two flows: one through a fat link, one through a thin link.
        topo = Topology("uneven")
        a, b, c, d = (topo.add_accelerator() for _ in range(4))
        topo.add_link(a, b, capacity=4.0)
        topo.add_link(c, d, capacity=1.0)
        topo.meta["injection_capacity"] = 4.0
        sim = FlowSimulator(topo)
        result = sim.maxmin_rates([Flow(0, 1), Flow(2, 3)])
        assert result.flow_rates[0] == pytest.approx(4.0)
        assert result.flow_rates[1] == pytest.approx(1.0)

    def test_conservation_no_link_oversubscribed(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=3)
        result = sim.maxmin_rates(flows)
        assert result.link_utilization.max() <= 1.0 + 1e-6
        assert (result.flow_rates > 0).all()

    def test_maxmin_dominates_symmetric_minimum(self, hx2mesh_4x4):
        """Max-min fairness never gives the worst flow less than the
        all-equal allocation."""
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=5)
        sym = sim.symmetric_rate(flows).min_rate
        mm = sim.maxmin_rates(flows).flow_rates.min()
        assert mm >= sym - 1e-9

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_rates_positive_and_feasible(self, seed):
        topo = build_hammingmesh(2, 2, 2, 2)
        sim = FlowSimulator(topo, max_paths=4)
        flows = random_permutation(topo.num_accelerators, seed=seed)
        result = sim.maxmin_rates(flows)
        assert (result.flow_rates > 0).all()
        assert result.link_utilization.max() <= 1.0 + 1e-6


class TestDerivedMetrics:
    def test_alltoall_nonblocking_fat_tree_near_full(self, fat_tree_64):
        sim = FlowSimulator(fat_tree_64, max_paths=8)
        bw = sim.alltoall_bandwidth(num_phases=16, seed=1)
        assert bw > 0.85

    def test_alltoall_hxmesh_limited(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, max_paths=8)
        bw = sim.alltoall_bandwidth(num_phases=16, seed=1)
        # around the bisection-related bound of 1/4, certainly below 1/2
        assert 0.1 < bw < 0.55

    def test_alltoall_phased_not_higher_than_aggregate(self, fat_tree_64):
        sim = FlowSimulator(fat_tree_64, max_paths=8)
        agg = sim.alltoall_bandwidth(num_phases=8, seed=1, method="aggregate")
        phased = sim.alltoall_bandwidth(num_phases=8, seed=1, method="phased")
        assert phased <= agg + 1e-6

    def test_alltoall_unknown_method(self, fat_tree_64):
        sim = FlowSimulator(fat_tree_64)
        with pytest.raises(ValueError):
            sim.alltoall_bandwidth(num_phases=4, method="bogus")

    def test_permutation_bandwidths_per_rank(self, fat_tree_64):
        sim = FlowSimulator(fat_tree_64, max_paths=8)
        flows = random_permutation(64, seed=0)
        fractions = sim.permutation_bandwidths(flows)
        assert fractions.shape == (64,)
        assert (fractions > 0).all()
        assert fractions.max() <= 1.0 + 1e-9

    def test_phase_bandwidth_exact_flag(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        flows = ring_neighbor_flows(list(range(hx2mesh_4x4.num_accelerators)))
        fast = sim.phase_bandwidth(flows)
        exact = sim.phase_bandwidth(flows, exact=True)
        assert exact >= fast - 1e-9


class TestSparseLinkParity:
    """The compacted link-space solves are bit-identical to the dense path.

    ``REPRO_SPARSE_LINKS=0`` pins the dense reference; the default takes
    the sparse path (solo always, batch below the density gate).  Every
    family must agree bitwise — not approximately — across the toggle.
    """

    @staticmethod
    def _assert_bitwise(a, b, ctx):
        assert np.array_equal(a.flow_rates, b.flow_rates), ctx
        assert np.array_equal(a.link_utilization, b.link_utilization), ctx
        assert int(a.bottleneck_link) == int(b.bottleneck_link), ctx

    @staticmethod
    def _slab_sets(topo, slab=8, scenarios=4):
        """Low-density scenarios: permutations inside small rank slabs."""
        p = topo.num_accelerators
        sets = []
        for s in range(scenarios):
            base = (s * slab) % p
            ranks = [(base + i) % p for i in range(min(slab, p))]
            sets.append(
                [Flow(r, ranks[(i + 1 + s) % len(ranks)])
                 for i, r in enumerate(ranks)
                 if r != ranks[(i + 1 + s) % len(ranks)]]
            )
        return sets

    def test_solo_bitwise_all_families(self, all_small_topologies, monkeypatch):
        for name, topo in all_small_topologies.items():
            sim = FlowSimulator(topo, max_paths=4)
            flows = random_permutation(topo.num_accelerators, seed=9)
            monkeypatch.setenv("REPRO_SPARSE_LINKS", "0")
            dense = sim.maxmin_rates(flows)
            monkeypatch.setenv("REPRO_SPARSE_LINKS", "1")
            sparse = sim.maxmin_rates(flows)
            self._assert_bitwise(dense, sparse, name)

    def test_batch_bitwise_all_families(self, all_small_topologies, monkeypatch):
        """Low-density batches (below the gate) take and match the sparse path."""
        import repro.obs as obs

        obs.enable()  # histograms only record while enabled
        try:
            for name, topo in all_small_topologies.items():
                sim = FlowSimulator(topo, max_paths=4)
                sets = self._slab_sets(topo)
                monkeypatch.setenv("REPRO_SPARSE_LINKS", "0")
                dense = sim.maxmin_rates_batch(sets)
                monkeypatch.setenv("REPRO_SPARSE_LINKS", "1")
                before = obs.snapshot()["histograms"].get("flowsim.active_links", {}).get("count", 0)
                sparse = sim.maxmin_rates_batch(sets)
                after = obs.snapshot()["histograms"].get("flowsim.active_links", {}).get("count", 0)
                assert after > before, f"{name}: sparse batch path was not taken"
                for d, s in zip(dense, sparse):
                    self._assert_bitwise(d, s, name)
        finally:
            obs.disable()

    def test_dense_batches_stay_on_the_dense_path(self, hx2mesh_4x4, monkeypatch):
        """Full permutations load most links: the density gate keeps the
        fixed-shape dense rounds, with identical results."""
        import repro.obs as obs

        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        sets = [random_permutation(hx2mesh_4x4.num_accelerators, seed=s)
                for s in range(3)]
        monkeypatch.setenv("REPRO_SPARSE_LINKS", "0")
        dense = sim.maxmin_rates_batch(sets)
        monkeypatch.setenv("REPRO_SPARSE_LINKS", "1")
        obs.enable()  # histograms only record while enabled
        try:
            before = obs.snapshot()["histograms"].get("flowsim.active_links", {}).get("count", 0)
            gated = sim.maxmin_rates_batch(sets)
            after = obs.snapshot()["histograms"].get("flowsim.active_links", {}).get("count", 0)
        finally:
            obs.disable()
        assert after == before, "dense-density batch went down the sparse path"
        for d, s in zip(dense, gated):
            self._assert_bitwise(d, s, "gate")

    def test_delta_bitwise(self, hx2mesh_4x4, monkeypatch):
        """Warm-started delta solves agree bitwise across the toggle."""
        from repro.sim import swap_destinations

        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=13)
        cand = swap_destinations(flows, 2, 7)
        results = {}
        for flag in ("0", "1"):
            monkeypatch.setenv("REPRO_SPARSE_LINKS", flag)
            state = sim.maxmin_warm_state(flows)
            results[flag] = sim.maxmin_rates_delta(state, cand).result
        self._assert_bitwise(results["0"], results["1"], "delta")
