"""Unit tests for board, fat-tree, torus, Dragonfly and HyperX builders."""

import pytest

from repro.topology import (
    CableClass,
    GlobalNetwork,
    Topology,
    TopologyError,
    add_board,
    build_dragonfly,
    build_fat_tree,
    build_hx1mesh,
    build_hyperx2d,
    build_torus2d,
    fat_tree_levels_for,
)
from repro.topology.board import EAST, NORTH, SOUTH, WEST


class TestBoard:
    def test_board_dimensions(self):
        topo = Topology("t")
        handle = add_board(topo, (0, 0), 4, 2)
        assert handle.a == 4 and handle.b == 2
        assert len(handle.all_nodes()) == 8
        assert topo.num_accelerators == 8

    def test_edge_ports(self):
        topo = Topology("t")
        handle = add_board(topo, (0, 0), 3, 2)
        assert len(handle.east_ports()) == 2
        assert len(handle.west_ports()) == 2
        assert len(handle.north_ports()) == 3
        assert len(handle.south_ports()) == 3
        assert handle.east_ports()[0] == handle.node_at(0, 2)

    def test_mesh_links_exist_between_neighbors(self):
        topo = Topology("t")
        handle = add_board(topo, (0, 0), 2, 2)
        n00 = handle.node_at(0, 0)
        assert handle.has_mesh_link(n00, EAST)
        assert handle.has_mesh_link(n00, SOUTH)
        assert not handle.has_mesh_link(n00, WEST)
        assert not handle.has_mesh_link(n00, NORTH)

    def test_mesh_links_are_pcb(self):
        topo = Topology("t")
        handle = add_board(topo, (0, 0), 2, 2)
        link = topo.link(handle.mesh_link(handle.node_at(0, 0), EAST))
        assert link.cable is CableClass.PCB

    def test_degenerate_board(self):
        topo = Topology("t")
        handle = add_board(topo, (0, 0), 1, 1)
        assert handle.all_nodes() == [0]
        assert not handle.mesh_links

    def test_invalid_board_rejected(self):
        topo = Topology("t")
        with pytest.raises(ValueError):
            add_board(topo, (0, 0), 0, 2)

    def test_node_attrs_record_coordinates(self):
        topo = Topology("t")
        handle = add_board(topo, (3, 5), 2, 2)
        attrs = topo.attrs(handle.node_at(1, 0))
        assert attrs["board"] == (3, 5)
        assert attrs["pos"] == (1, 0)


class TestFatTreeLevels:
    @pytest.mark.parametrize(
        "ports,expected", [(1, 1), (64, 1), (65, 2), (2048, 2), (2049, 3), (65536, 3)]
    )
    def test_levels(self, ports, expected):
        assert fat_tree_levels_for(ports, 64) == expected

    def test_too_many_ports(self):
        with pytest.raises(TopologyError):
            fat_tree_levels_for(64 ** 3, 64)

    def test_invalid_port_count(self):
        with pytest.raises(TopologyError):
            fat_tree_levels_for(0)


class TestGlobalNetwork:
    def test_single_switch(self):
        topo = Topology("t")
        ports = [topo.add_accelerator() for _ in range(8)]
        net = GlobalNetwork(topo, ports, radix=64)
        assert net.levels == 1
        assert net.num_switches == 1
        assert all(net.has_port(p) for p in ports)

    def test_two_level(self):
        topo = Topology("t")
        ports = [topo.add_accelerator() for _ in range(128)]
        net = GlobalNetwork(topo, ports, radix=64)
        assert net.levels == 2
        assert len(net.leaf_switches) == 4
        assert len(net.spine_switches) >= 2

    def test_duplicate_port_attachments(self):
        topo = Topology("t")
        acc = topo.add_accelerator()
        other = topo.add_accelerator()
        net = GlobalNetwork(topo, [acc, acc, other], radix=64)
        assert len(net.attachments_of(acc)) == 2

    def test_paths_through_single_switch(self):
        topo = Topology("t")
        ports = [topo.add_accelerator() for _ in range(4)]
        net = GlobalNetwork(topo, ports, radix=64)
        paths = net.paths(ports[0], ports[3])
        assert paths and all(len(p) == 2 for p in paths)

    def test_paths_through_two_levels(self):
        topo = Topology("t")
        ports = [topo.add_accelerator() for _ in range(128)]
        net = GlobalNetwork(topo, ports, radix=64)
        paths = net.paths(ports[0], ports[127], max_paths=8)
        assert paths
        assert all(len(p) == 4 for p in paths)

    def test_three_level_paths_cross_core(self):
        topo = Topology("t")
        ports = [topo.add_accelerator() for _ in range(4096)]
        net = GlobalNetwork(topo, ports, radix=64)
        assert net.levels == 3
        paths = net.paths(ports[0], ports[4095], max_paths=4)
        assert paths and all(len(p) == 6 for p in paths)

    def test_taper_bounds(self):
        topo = Topology("t")
        ports = [topo.add_accelerator() for _ in range(8)]
        with pytest.raises(TopologyError):
            GlobalNetwork(topo, ports, taper=0.0)
        with pytest.raises(TopologyError):
            GlobalNetwork(topo, [], radix=64)


class TestFatTreeBuilder:
    def test_sizes(self, fat_tree_64):
        assert fat_tree_64.num_accelerators == 64
        assert fat_tree_64.meta["family"] == "fattree"

    def test_tapered_tree_has_fewer_switches(self):
        full = build_fat_tree(256, taper=1.0)
        tapered = build_fat_tree(256, taper=0.25)
        assert tapered.num_switches < full.num_switches

    def test_collapsed_plane_capacity(self, fat_tree_64):
        acc = fat_tree_64.accelerators[0]
        out = fat_tree_64.out_links(acc)
        assert len(out) == 1
        assert fat_tree_64.link(out[0]).capacity == pytest.approx(4.0)

    def test_rejects_tiny_cluster(self):
        with pytest.raises(TopologyError):
            build_fat_tree(1)


class TestTorusBuilder:
    def test_grid_dimensions(self, torus_4x4_boards):
        meta = torus_4x4_boards.meta
        assert (meta["rows"], meta["cols"]) == (8, 8)
        assert torus_4x4_boards.num_accelerators == 64
        assert torus_4x4_boards.num_switches == 0

    def test_every_accelerator_has_four_ports(self, torus_4x4_boards):
        for acc in torus_4x4_boards.accelerators:
            assert torus_4x4_boards.degree(acc) == 4

    def test_dir_links_cover_grid(self, torus_4x4_boards):
        meta = torus_4x4_boards.meta
        for r in range(meta["rows"]):
            for c in range(meta["cols"]):
                for d in "ENSW":
                    assert (r, c, d) in meta["dir_links"]

    def test_wraparound_exists(self, torus_4x4_boards):
        meta = torus_4x4_boards.meta
        east_link = meta["dir_links"][(0, meta["cols"] - 1, "E")]
        link = torus_4x4_boards.link(east_link)
        assert meta["coord_of"][link.dst] == (0, 0)

    def test_rejects_degenerate_grid(self):
        with pytest.raises(TopologyError):
            build_torus2d(1, 1, board_a=2, board_b=1)


class TestDragonflyBuilder:
    def test_counts(self, dragonfly_small_fixture):
        topo = dragonfly_small_fixture
        assert topo.num_accelerators == 4 * 4 * 2
        assert topo.num_switches == 16

    def test_local_all_to_all(self, dragonfly_small_fixture):
        meta = dragonfly_small_fixture.meta
        group0 = meta["routers"][0]
        for i in range(len(group0)):
            for j in range(len(group0)):
                if i != j:
                    assert (group0[i], group0[j]) in meta["local_links"]

    def test_every_group_pair_connected(self, dragonfly_small_fixture):
        meta = dragonfly_small_fixture.meta
        g = meta["num_groups"]
        for a in range(g):
            for b in range(g):
                if a != b:
                    assert meta["group_links"][(a, b)]

    def test_paper_configurations(self):
        from repro.topology import dragonfly_large, dragonfly_small

        small = dragonfly_small()
        assert small.num_accelerators == 1024
        # The large configuration (16,320 endpoints) is exercised in the
        # benchmarks; here we only check the parameterisation helper exists.
        assert callable(dragonfly_large)

    def test_rejects_single_group(self):
        with pytest.raises(TopologyError):
            build_dragonfly(1)


class TestHyperXBuilder:
    def test_switch_grid(self, hyperx_4x4):
        meta = hyperx_4x4.meta
        assert meta["x"] == 4 and meta["y"] == 4
        assert hyperx_4x4.num_switches == 16
        assert hyperx_4x4.num_accelerators == 16

    def test_row_and_column_fully_connected(self, hyperx_4x4):
        meta = hyperx_4x4.meta
        grid = meta["switch_grid"]
        for r in range(4):
            for c1 in range(4):
                for c2 in range(4):
                    if c1 != c2:
                        assert (grid[r][c1], grid[r][c2]) in meta["switch_links"]

    def test_terminals_parameter(self):
        topo = build_hyperx2d(3, 3, terminals=2)
        assert topo.num_accelerators == 18

    def test_rejects_single_column(self):
        with pytest.raises(TopologyError):
            build_hyperx2d(1, 4)

    def test_hx1mesh_is_hammingmesh(self):
        topo = build_hx1mesh(3, 3)
        assert topo.meta["family"] == "hammingmesh"
        assert topo.meta["is_hyperx"]
        assert topo.num_accelerators == 9
