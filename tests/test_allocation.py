"""Tests for the job allocation stack (grid, greedy allocator, heuristics,
workload generator, locality estimator, fragmentation experiments)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.allocation import (
    AllocatorOptions,
    BoardGrid,
    GreedyAllocator,
    JobRequest,
    JobTrace,
    alibaba_like_distribution,
    aspect_ratio_shapes,
    most_square_shape,
    sample_job_mixes,
    upper_level_fraction,
    utilization_under_failures,
)
from repro.core.subnetwork import VirtualSubMesh, is_valid_submesh


class TestJobShapes:
    @pytest.mark.parametrize(
        "boards,expected", [(1, (1, 1)), (4, (2, 2)), (12, (3, 4)), (7, (1, 7)), (36, (6, 6))]
    )
    def test_most_square(self, boards, expected):
        assert most_square_shape(boards) == expected

    def test_most_square_invalid(self):
        with pytest.raises(ValueError):
            most_square_shape(0)

    def test_aspect_ratio_shapes(self):
        shapes = aspect_ratio_shapes(64, max_ratio=8)
        assert (8, 8) in shapes
        assert (4, 16) in shapes
        assert (2, 32) not in shapes  # ratio 16 > 8
        assert shapes[0] == (8, 8)    # most square first

    def test_job_request(self):
        job = JobRequest.from_board_count(3, 12)
        assert job.num_boards == 12
        with pytest.raises(ValueError):
            JobRequest(0, 0, 2)

    def test_trace_sorting(self):
        trace = JobTrace([JobRequest(0, 1, 1), JobRequest(1, 4, 4), JobRequest(2, 2, 2)])
        sizes = [j.num_boards for j in trace.sorted_by_size()]
        assert sizes == [16, 4, 1]
        assert trace.total_boards == 21


class TestBoardGrid:
    def test_initial_state(self):
        grid = BoardGrid(4, 3)
        assert grid.num_boards == 12
        assert grid.num_free == 12
        assert grid.utilization() == 0.0

    def test_allocate_and_release(self):
        grid = BoardGrid(4, 4)
        sm = VirtualSubMesh(rows=(0, 1), cols=(0, 2))
        grid.allocate(7, sm)
        assert grid.num_allocated == 4
        assert grid.job_at((0, 0)) == 7
        assert grid.job_at((0, 1)) is None
        assert grid.boards_of(7) == sm.boards()
        grid.release(7)
        assert grid.num_allocated == 0

    def test_double_allocation_rejected(self):
        grid = BoardGrid(4, 4)
        sm = VirtualSubMesh(rows=(0,), cols=(0,))
        grid.allocate(1, sm)
        with pytest.raises(ValueError):
            grid.allocate(2, sm)
        with pytest.raises(ValueError):
            grid.allocate(1, VirtualSubMesh(rows=(1,), cols=(1,)))

    def test_failures(self):
        grid = BoardGrid(4, 4)
        failed = grid.fail_random(3, seed=1)
        assert len(failed) == 3
        assert grid.num_failed == 3
        assert grid.num_working == 13
        with pytest.raises(ValueError):
            grid.fail_random(20)

    def test_cannot_fail_allocated_board(self):
        grid = BoardGrid(2, 2)
        grid.allocate(0, VirtualSubMesh(rows=(0,), cols=(0,)))
        with pytest.raises(ValueError):
            grid.fail_boards([(0, 0)])

    def test_row_available_excludes_failed_and_allocated(self):
        grid = BoardGrid(3, 2)
        grid.fail_boards([(0, 1)])
        grid.allocate(0, VirtualSubMesh(rows=(1,), cols=(0,)))
        avail = grid.row_available()
        assert avail[0] == frozenset({0, 2})
        assert avail[1] == frozenset({1, 2})

    def test_utilization_counts_working_boards_only(self):
        grid = BoardGrid(2, 2)
        grid.fail_boards([(0, 0), (0, 1)])
        grid.allocate(0, VirtualSubMesh(rows=(1,), cols=(0, 1)))
        assert grid.utilization() == pytest.approx(1.0)

    def test_repair_boards(self):
        grid = BoardGrid(2, 2)
        grid.fail_boards([(0, 0)])
        grid.repair_boards([(0, 0)])
        assert grid.num_failed == 0 and grid.is_free((0, 0))
        with pytest.raises(ValueError):
            grid.repair_boards([(1, 1)])  # not failed

    def test_coord_views(self):
        grid = BoardGrid(2, 2)
        grid.fail_boards([(0, 1)])
        grid.allocate(0, VirtualSubMesh(rows=(1,), cols=(0,)))
        assert grid.free_coords() == [(0, 0), (1, 1)]
        assert grid.failed_coords() == [(0, 1)]
        assert grid.working_coords() == [(0, 0), (1, 0), (1, 1)]

    def test_reset(self):
        grid = BoardGrid(2, 2)
        grid.fail_boards([(0, 0)])
        grid.allocate(0, VirtualSubMesh(rows=(1,), cols=(1,)))
        grid.reset()
        assert grid.num_allocated == 0 and grid.num_failed == 1
        grid.reset(keep_failures=False)
        assert grid.num_failed == 0


class TestGreedyAllocator:
    def test_exact_fit(self):
        grid = BoardGrid(4, 4)
        allocator = GreedyAllocator(grid)
        sm = allocator.allocate(JobRequest(0, 4, 4))
        assert sm is not None and sm.num_boards == 16
        assert grid.utilization() == 1.0

    def test_allocation_is_valid_submesh(self):
        grid = BoardGrid(8, 8)
        grid.fail_random(6, seed=2)
        allocator = GreedyAllocator(grid, AllocatorOptions(transpose=True))
        sm = allocator.allocate(JobRequest(0, 3, 5))
        if sm is not None:
            assert is_valid_submesh(sm.boards())
            assert all(grid.job_at(b) == 0 for b in sm.boards())

    def test_transpose_heuristic_helps(self):
        # A 2x6 request cannot fit a 4-column grid, but its transpose can.
        grid = BoardGrid(4, 8)
        plain = GreedyAllocator(BoardGrid(4, 8), AllocatorOptions())
        assert plain.allocate(JobRequest(0, 2, 6)) is None
        transposing = GreedyAllocator(grid, AllocatorOptions(transpose=True))
        assert transposing.allocate(JobRequest(0, 2, 6)) is not None

    def test_aspect_ratio_heuristic_helps(self):
        # 16 boards as 4x4 does not fit a 2-row grid; 2x8 does.
        grid = BoardGrid(8, 2)
        plain = GreedyAllocator(BoardGrid(8, 2), AllocatorOptions(transpose=True))
        assert plain.allocate(JobRequest(0, 4, 4)) is None
        flexible = GreedyAllocator(grid, AllocatorOptions(transpose=True, aspect_ratio=True))
        assert flexible.allocate(JobRequest(0, 4, 4)) is not None

    def test_oversized_job_rejected(self):
        allocator = GreedyAllocator(BoardGrid(4, 4))
        assert allocator.allocate(JobRequest(0, 5, 5)) is None

    def test_no_board_shared_between_jobs(self):
        grid = BoardGrid(8, 8)
        allocator = GreedyAllocator(grid, AllocatorOptions(transpose=True, aspect_ratio=True))
        trace = JobTrace([JobRequest(i, 2, 2) for i in range(20)])
        result = allocator.allocate_trace(trace)
        seen = {}
        for job_id, sm in result.placed.items():
            for board in sm.boards():
                assert board not in seen, f"board {board} allocated twice"
                seen[board] = job_id

    def test_locality_prefers_compact_columns(self):
        grid = BoardGrid(32, 32)
        options = AllocatorOptions(
            transpose=True, aspect_ratio=True, locality=True, boards_per_leaf=16
        )
        allocator = GreedyAllocator(grid, options)
        sm = allocator.allocate(JobRequest(0, 4, 4))
        assert sm is not None
        assert upper_level_fraction(sm, boards_per_leaf=16) <= 0.5

    def test_named_presets(self):
        assert AllocatorOptions.named("greedy") == AllocatorOptions()
        assert AllocatorOptions.named("greedy+transpose").transpose
        with pytest.raises(ValueError):
            AllocatorOptions.named("bogus")

    @given(
        grid_size=st.integers(4, 10),
        jobs=st.lists(st.integers(1, 20), min_size=1, max_size=25),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_allocations_never_overlap_or_exceed_grid(self, grid_size, jobs):
        grid = BoardGrid(grid_size, grid_size)
        allocator = GreedyAllocator(
            grid, AllocatorOptions(transpose=True, aspect_ratio=True)
        )
        trace = JobTrace([JobRequest(i, *most_square_shape(s)) for i, s in enumerate(jobs)])
        result = allocator.allocate_trace(trace)
        total = sum(sm.num_boards for sm in result.placed.values())
        assert total == grid.num_allocated <= grid.num_boards
        assert 0.0 <= result.utilization <= 1.0


class TestWorkloadGenerator:
    def test_distribution_is_normalised(self):
        dist = alibaba_like_distribution()
        assert sum(dist.probabilities) == pytest.approx(1.0)
        assert dist.mean_size() > 1.0

    def test_cdfs_are_monotone(self):
        dist = alibaba_like_distribution()
        for cdf in (dist.count_weighted_cdf(), dist.board_weighted_cdf()):
            values = [v for _, v in cdf]
            assert values == sorted(values)
            assert values[-1] == pytest.approx(1.0)

    def test_board_weighted_cdf_has_heavy_tail(self):
        dist = alibaba_like_distribution()
        below_100 = [v for s, v in dist.board_weighted_cdf() if s <= 100][-1]
        # most of the job *count* is small but a large share of boards
        # belongs to big jobs (Figure 7's shape)
        assert 0.3 < below_100 < 0.9

    def test_sample_job_mixes_fill_cluster(self):
        mixes = sample_job_mixes(256, 5, seed=0)
        assert len(mixes) == 5
        for mix in mixes:
            assert 0 < mix.total_boards <= 256
            assert all(j.num_boards <= 256 for j in mix)

    def test_mixes_are_deterministic_per_seed(self):
        a = sample_job_mixes(64, 3, seed=7)
        b = sample_job_mixes(64, 3, seed=7)
        assert [[j.num_boards for j in m] for m in a] == [
            [j.num_boards for j in m] for m in b
        ]

    def test_invalid_distribution(self):
        from repro.allocation import JobSizeDistribution

        with pytest.raises(ValueError):
            JobSizeDistribution((1, 2), (0.5, 0.2))
        with pytest.raises(ValueError):
            JobSizeDistribution((0,), (1.0,))

    def test_sample_too_big_carries_to_next_mix(self):
        from repro.allocation import JobSizeDistribution

        # Cluster of 6 boards, every sample is 4 boards: the second draw of
        # each mix (4 > 2 remaining) must be carried over and reappear as
        # the FIRST job of the next mix (Section IV-B semantics), so every
        # mix holds exactly one job despite nominal capacity for 1.5.
        dist = JobSizeDistribution((4,), (1.0,))
        mixes = sample_job_mixes(6, 3, distribution=dist, seed=0)
        assert [[j.num_boards for j in m] for m in mixes] == [[4], [4], [4]]
        # job ids keep increasing across mixes (the carried job is the same
        # sample, not a duplicate)
        ids = [j.job_id for m in mixes for j in m]
        assert ids == [0, 1, 2]

    def test_carry_over_preserves_sample_order(self):
        from repro.allocation import JobSizeDistribution

        # With no size ever skipped, the concatenation of all mixes must be
        # exactly the raw sample stream: carried samples delay jobs across
        # the mix boundary but never drop or reorder them.
        dist = JobSizeDistribution((3, 4), (0.5, 0.5))
        mixes = sample_job_mixes(8, 5, distribution=dist, seed=5)
        flat = [j.num_boards for m in mixes for j in m]
        rng = np.random.default_rng(5)
        raw = [int(s) for s in dist.sample(rng, len(flat) + 8)]
        assert flat == raw[: len(flat)]
        # at least one mix must have left a gap that the carried sample
        # explains (total < cluster while the next mix starts with it)
        assert any(m.total_boards < 8 for m in mixes[:-1])

    def test_mixes_deterministic_and_seed_sensitive(self):
        a = sample_job_mixes(128, 4, seed=21)
        b = sample_job_mixes(128, 4, seed=21)
        c = sample_job_mixes(128, 4, seed=22)
        key = lambda mixes: [[(j.job_id, j.u, j.v) for j in m] for m in mixes]
        assert key(a) == key(b)
        assert key(a) != key(c)


class TestLocality:
    def test_single_leaf_job_has_no_upper_traffic(self):
        sm = VirtualSubMesh(rows=(0, 1), cols=(2, 3))
        assert upper_level_fraction(sm, boards_per_leaf=16) == 0.0

    def test_spread_job_crosses_upper_levels(self):
        sm = VirtualSubMesh(rows=(0, 40), cols=(1, 50))
        assert upper_level_fraction(sm, boards_per_leaf=16, pattern="alltoall") > 0.4

    def test_allreduce_leq_alltoall(self):
        sm = VirtualSubMesh(rows=tuple(range(0, 64, 4)), cols=tuple(range(0, 64, 4)))
        ar = upper_level_fraction(sm, boards_per_leaf=16, pattern="allreduce")
        a2a = upper_level_fraction(sm, boards_per_leaf=16, pattern="alltoall")
        assert ar <= a2a + 1e-9

    def test_unknown_pattern(self):
        sm = VirtualSubMesh(rows=(0, 1), cols=(0, 1))
        with pytest.raises(ValueError):
            upper_level_fraction(sm, pattern="bogus")


class TestFragmentation:
    def test_failure_experiment_shapes(self):
        results = utilization_under_failures(8, 8, [0, 4, 8], num_trials=4, seed=1)
        assert [r.num_failed for r in results] == [0, 4, 8]
        for r in results:
            assert len(r.utilizations) == 4
            assert 0.0 <= r.median <= 1.0
            assert 0.0 <= r.percentile(99) <= 1.0

    def test_more_failures_do_not_increase_capacity(self):
        results = utilization_under_failures(
            8, 8, [0, 16], num_trials=6, seed=3, sort_jobs=True
        )
        # utilization of *working* boards stays high even with failures
        assert results[1].median > 0.5
