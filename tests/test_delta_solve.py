"""Tests for warm-started delta solves and the annealing adversary search."""

import numpy as np
import pytest

import repro.obs as obs
from repro.sim import (
    Flow,
    FlowSimulator,
    adversarial_permutation,
    anneal_adversary,
    random_permutation,
    swap_destinations,
    worst_receive_fraction,
)
from repro.sim.routing import parse_mem_budget

PARITY = 1e-12


def _max_diff(a, b):
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b)))) if len(a) else 0.0


def _random_moves(rng, flows, p, count):
    """A mixed sequence of perturbations: swap, retarget, demand, add, remove."""
    seq = []
    cur = list(flows)
    for _ in range(count):
        kinds = ["swap", "retarget", "demand"]
        if len(cur) < p:
            kinds.append("add")
        if len(cur) > 2:
            kinds.append("remove")
        kind = kinds[rng.integers(len(kinds))]
        if kind == "swap":
            for _ in range(32):
                i, j = (int(v) for v in rng.choice(len(cur), size=2, replace=False))
                if cur[i].src != cur[j].dst and cur[j].src != cur[i].dst:
                    cur = swap_destinations(cur, i, j)
                    break
        elif kind == "retarget":
            i = int(rng.integers(len(cur)))
            dst = int(rng.integers(p))
            if dst == cur[i].src:
                dst = (dst + 1) % p
            cur = list(cur)
            cur[i] = Flow(cur[i].src, dst, demand=cur[i].demand)
        elif kind == "demand":
            i = int(rng.integers(len(cur)))
            cur = list(cur)
            cur[i] = Flow(cur[i].src, cur[i].dst, demand=float(rng.uniform(0.5, 2.0)))
        elif kind == "add":
            src = int(rng.integers(p))
            dst = int(rng.integers(p))
            if dst == src:
                dst = (dst + 1) % p
            cur = list(cur) + [Flow(src, dst)]
        else:
            cur = list(cur)[:-1]
        seq.append(cur)
    return seq


class TestDeltaParity:
    @pytest.mark.parametrize("policy", ["minimal", "ecmp"])
    def test_randomized_move_sequences_all_families(
        self, all_small_topologies, policy
    ):
        """Chained delta solves match a fresh cold solve after every move."""
        warm_total = 0
        for name, topo in all_small_topologies.items():
            sim = FlowSimulator(topo, policy=policy, assign_cache=0)
            p = topo.num_accelerators
            rng = np.random.default_rng(7)
            flows = random_permutation(p, seed=3)
            state = sim.maxmin_warm_state(flows)
            assert _max_diff(
                state.result.flow_rates, sim.maxmin_rates(flows).flow_rates
            ) <= PARITY
            for cand in _random_moves(rng, flows, p, 8):
                ds = sim.maxmin_rates_delta(state, cand)
                cold = sim.maxmin_rates(cand)
                assert _max_diff(ds.result.flow_rates, cold.flow_rates) <= PARITY, (
                    name,
                    policy,
                )
                warm_total += int(ds.warm)
                assert ds.state is not None
                state = ds.state
        # The warm path must actually be exercised somewhere in the sweep.
        assert warm_total > 0

    def test_swap_and_changed_hint_parity(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        flows = adversarial_permutation(hx2mesh_4x4)
        state = sim.maxmin_warm_state(flows)
        cand = swap_destinations(flows, 0, 1)
        hinted = sim.maxmin_rates_delta(state, cand, changed=(0, 1))
        diffed = sim.maxmin_rates_delta(state, cand)
        cold = sim.maxmin_rates(cand)
        assert _max_diff(hinted.result.flow_rates, cold.flow_rates) <= PARITY
        assert _max_diff(diffed.result.flow_rates, cold.flow_rates) <= PARITY

    def test_identity_delta_is_free(self, fat_tree_64):
        sim = FlowSimulator(fat_tree_64, assign_cache=0)
        flows = random_permutation(fat_tree_64.num_accelerators, seed=1)
        state = sim.maxmin_warm_state(flows)
        ds = sim.maxmin_rates_delta(state, flows)
        assert ds.warm and ds.changed == 0
        assert ds.state is state

    def test_want_state_false_skips_state(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=2)
        state = sim.maxmin_warm_state(flows)
        cand = swap_destinations(flows, 1, 5)
        ds = sim.maxmin_rates_delta(state, cand, want_state=False)
        assert ds.state is None
        assert _max_diff(
            ds.result.flow_rates, sim.maxmin_rates(cand).flow_rates
        ) <= PARITY

    def test_forced_fallback_is_exact(self, hx2mesh_4x4):
        """A corrupted warm state fails verification but the rates stay exact."""
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=4)
        state = sim.maxmin_warm_state(flows)
        # Inflate the recorded link loads: every candidate the warm path
        # builds on this state looks infeasible, so verification must reject
        # it no matter how far the active set expands.
        state.used += 1.0 + state.used.max()
        cand = swap_destinations(flows, 0, 3)
        before = obs.snapshot()["counters"]["flowsim.delta_fallbacks"]
        ds = sim.maxmin_rates_delta(state, cand)
        after = obs.snapshot()["counters"]["flowsim.delta_fallbacks"]
        assert not ds.warm
        assert after == before + 1
        assert _max_diff(
            ds.result.flow_rates, sim.maxmin_rates(cand).flow_rates
        ) <= PARITY

    def test_ugal_always_falls_back(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, policy="ugal", assign_cache=0)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=5)
        state = sim.maxmin_warm_state(flows)
        cand = swap_destinations(flows, 2, 9)
        ds = sim.maxmin_rates_delta(state, cand)
        assert not ds.warm
        assert _max_diff(
            ds.result.flow_rates, sim.maxmin_rates(cand).flow_rates
        ) <= PARITY

    def test_rejects_self_send_in_changed(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=6)
        state = sim.maxmin_warm_state(flows)
        bad = list(flows)
        bad[0] = Flow(bad[0].src, bad[0].src)
        with pytest.raises(ValueError):
            sim.maxmin_rates_delta(state, bad)

    def test_changed_index_out_of_range(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=6)
        state = sim.maxmin_warm_state(flows)
        with pytest.raises(ValueError):
            sim.maxmin_rates_delta(state, flows, changed=[len(flows)])


class TestDeltaBatch:
    @pytest.mark.parametrize("policy", ["minimal", "ecmp", "valiant"])
    def test_batch_matches_cold_per_candidate(self, all_small_topologies, policy):
        for name, topo in all_small_topologies.items():
            sim = FlowSimulator(topo, policy=policy, assign_cache=0)
            p = topo.num_accelerators
            flows = adversarial_permutation(topo)
            if len(flows) < 4:
                flows = random_permutation(p, seed=8)
            state = sim.maxmin_warm_state(flows)
            rng = np.random.default_rng(11)
            moves, cands = [], []
            while len(moves) < 6:
                i, j = (int(v) for v in rng.choice(len(flows), size=2, replace=False))
                if flows[i].src != flows[j].dst and flows[j].src != flows[i].dst:
                    moves.append((i, j))
                    cands.append(swap_destinations(flows, i, j))
            solves = sim.maxmin_rates_delta_batch(state, cands, changed=moves)
            assert len(solves) == len(cands)
            for cand, ds in zip(cands, solves):
                cold = sim.maxmin_rates(cand)
                assert _max_diff(ds.result.flow_rates, cold.flow_rates) <= PARITY, (
                    name,
                    policy,
                )

    def test_batch_matches_sequential_delta(self, fat_tree_64):
        """Batched and sequential delta solves agree candidate by candidate."""
        sim = FlowSimulator(fat_tree_64, assign_cache=0)
        flows = random_permutation(fat_tree_64.num_accelerators, seed=9)
        state = sim.maxmin_warm_state(flows)
        moves = [(0, 1), (5, 20), (33, 60)]
        cands = [swap_destinations(flows, *mv) for mv in moves]
        batch = sim.maxmin_rates_delta_batch(state, cands, changed=moves)
        for mv, cand, ds in zip(moves, cands, batch):
            solo = sim.maxmin_rates_delta(state, cand, changed=mv, want_state=False)
            assert _max_diff(ds.result.flow_rates, solo.result.flow_rates) <= PARITY

    def test_empty_batch(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=9)
        state = sim.maxmin_warm_state(flows)
        assert sim.maxmin_rates_delta_batch(state, []) == []

    def test_batch_rejects_self_send(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=9)
        state = sim.maxmin_warm_state(flows)
        bad = list(flows)
        bad[3] = Flow(bad[3].src, bad[3].src)
        with pytest.raises(ValueError):
            sim.maxmin_rates_delta_batch(state, [bad], changed=[(3,)])


class TestAssignCacheKnob:
    def test_constructor_knob(self, hx2mesh_4x4):
        assert FlowSimulator(hx2mesh_4x4, assign_cache=0).assign_cache == 0
        assert FlowSimulator(hx2mesh_4x4, assign_cache=7).assign_cache == 7
        with pytest.raises(ValueError):
            FlowSimulator(hx2mesh_4x4, assign_cache=-1)

    def test_env_knob(self, hx2mesh_4x4, monkeypatch):
        monkeypatch.setenv("REPRO_ASSIGN_CACHE", "3")
        assert FlowSimulator(hx2mesh_4x4).assign_cache == 3
        monkeypatch.setenv("REPRO_ASSIGN_CACHE", "zero")
        with pytest.raises(ValueError):
            FlowSimulator(hx2mesh_4x4)
        monkeypatch.setenv("REPRO_ASSIGN_CACHE", "-2")
        with pytest.raises(ValueError):
            FlowSimulator(hx2mesh_4x4)

    def test_disabled_cache_never_hits(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=10)
        before = obs.snapshot()["counters"]["flowsim.assignment_cache_hits"]
        sim.maxmin_rates(flows)
        sim.maxmin_rates(flows)
        after = obs.snapshot()["counters"]["flowsim.assignment_cache_hits"]
        assert after == before
        assert len(sim._assignments) == 0

    def test_cache_hit_counted(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=4)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=10)
        sim.maxmin_rates(flows)
        before = obs.snapshot()["counters"]["flowsim.assignment_cache_hits"]
        sim.maxmin_rates(flows)
        after = obs.snapshot()["counters"]["flowsim.assignment_cache_hits"]
        assert after == before + 1


class TestParseMemBudget:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("256m", 256 * 1024**2),
            ("4g", 4 * 1024**3),
            ("1k", 1024),
            ("2T", 2 * 1024**4),
            ("512", 512),
        ],
    )
    def test_lowercase_suffixes(self, raw, expected):
        assert parse_mem_budget(raw) == expected

    @pytest.mark.parametrize("raw", [0, -1, "0", "-4G", "0M", -0.5])
    def test_nonpositive_rejected(self, raw):
        with pytest.raises(ValueError):
            parse_mem_budget(raw)

    def test_none_and_empty_mean_unbounded(self):
        assert parse_mem_budget(None) is None
        assert parse_mem_budget("") is None


class TestSwapDestinations:
    def test_swaps_without_mutating(self):
        flows = [Flow(0, 1), Flow(2, 3, demand=2.0)]
        out = swap_destinations(flows, 0, 1)
        assert (out[0].src, out[0].dst) == (0, 3)
        assert (out[1].src, out[1].dst) == (2, 1)
        assert out[1].demand == 2.0
        assert (flows[0].dst, flows[1].dst) == (1, 3)

    def test_rejects_same_index(self):
        with pytest.raises(ValueError):
            swap_destinations([Flow(0, 1), Flow(1, 0)], 1, 1)


class TestAnnealAdversary:
    def test_searched_at_least_matches_seed(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        res = anneal_adversary(sim, steps=24, batch=8, seed=0)
        assert res.best_objective <= res.seed_objective + PARITY
        assert res.steps >= 24
        assert res.warm_evals + res.cold_evals == res.steps

    def test_deterministic(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        a = anneal_adversary(sim, steps=16, batch=4, seed=42)
        b = anneal_adversary(sim, steps=16, batch=4, seed=42)
        assert a.best_objective == b.best_objective
        assert a.accepted == b.accepted
        assert [(f.src, f.dst) for f in a.best_flows] == [
            (f.src, f.dst) for f in b.best_flows
        ]

    def test_zero_steps_returns_seed(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        flows = adversarial_permutation(hx2mesh_4x4)
        res = anneal_adversary(sim, flows, steps=0)
        assert res.steps == 0 and res.accepted == 0
        assert res.best_objective == res.seed_objective
        assert [(f.src, f.dst) for f in res.best_flows] == [
            (f.src, f.dst) for f in flows
        ]

    def test_best_objective_is_reachable(self, hx2mesh_4x4):
        """The reported best objective re-solves to the same number cold."""
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        res = anneal_adversary(sim, steps=16, batch=4, seed=1)
        rates = sim.maxmin_rates(res.best_flows).flow_rates
        obj = worst_receive_fraction(hx2mesh_4x4, res.best_flows, rates)
        assert obj == pytest.approx(res.best_objective, abs=PARITY)

    def test_parameter_validation(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        with pytest.raises(ValueError):
            anneal_adversary(sim, steps=-1)
        with pytest.raises(ValueError):
            anneal_adversary(sim, steps=4, batch=0)
        with pytest.raises(ValueError):
            anneal_adversary(sim, steps=4, t_initial=0.01, t_final=0.02)

    def test_search_counters_move(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, assign_cache=0)
        before = obs.snapshot()["counters"]["search.steps"]
        anneal_adversary(sim, steps=8, batch=4, seed=2)
        after = obs.snapshot()["counters"]["search.steps"]
        assert after >= before + 8
