"""Tests for path providers and traffic pattern generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    Flow,
    GenericPathProvider,
    alltoall_phase,
    alltoall_phases,
    nearest_neighbor_2d_flows,
    path_provider_for,
    random_permutation,
    ring_neighbor_flows,
    sampled_alltoall_phases,
    uniform_pair_sample,
)
from repro.topology import TopologyError


def check_path(topo, src, dst, path):
    node = src
    for li in path:
        link = topo.link(li)
        assert link.src == node
        node = link.dst
    assert node == dst


class TestPathProviders:
    def test_provider_dispatch(self, all_small_topologies):
        from repro.sim import (
            DragonflyPathProvider,
            FatTreePathProvider,
            HxMeshPathProvider,
            HyperXPathProvider,
            TorusPathProvider,
        )

        expected = {
            "hammingmesh": HxMeshPathProvider,
            "fattree": FatTreePathProvider,
            "dragonfly": DragonflyPathProvider,
            "torus": TorusPathProvider,
            "hyperx": HyperXPathProvider,
        }
        for family, topo in all_small_topologies.items():
            assert isinstance(path_provider_for(topo), expected[family])

    @pytest.mark.parametrize("family", ["hammingmesh", "fattree", "dragonfly", "torus", "hyperx"])
    def test_paths_are_valid_on_every_family(self, all_small_topologies, family):
        topo = all_small_topologies[family]
        provider = path_provider_for(topo)
        accs = list(topo.accelerators)
        pairs = [(accs[0], accs[-1]), (accs[1], accs[len(accs) // 2]), (accs[-1], accs[0])]
        for src, dst in pairs:
            paths = provider.paths(src, dst, max_paths=4)
            assert 1 <= len(paths) <= 4
            for path in paths:
                check_path(topo, src, dst, path)

    @pytest.mark.parametrize("family", ["hammingmesh", "fattree", "dragonfly", "torus", "hyperx"])
    def test_paths_match_bfs_shortest_length(self, all_small_topologies, family):
        """Structured providers must return minimal-length paths."""
        topo = all_small_topologies[family]
        provider = path_provider_for(topo)
        generic = GenericPathProvider(topo)
        accs = list(topo.accelerators)
        rng = np.random.default_rng(0)
        for _ in range(10):
            src, dst = rng.choice(accs, 2, replace=False)
            best = len(generic.paths(int(src), int(dst), max_paths=1)[0])
            structured = provider.paths(int(src), int(dst), max_paths=4)
            assert min(len(p) for p in structured) == best

    def test_generic_provider_self_path(self, fat_tree_64):
        provider = GenericPathProvider(fat_tree_64)
        assert provider.paths(fat_tree_64.accelerators[0], fat_tree_64.accelerators[0]) == [[]]

    def test_generic_provider_unreachable(self):
        from repro.topology import Topology

        topo = Topology("x")
        a = topo.add_accelerator()
        b = topo.add_accelerator()
        c = topo.add_accelerator()
        topo.add_link(a, b)
        provider = GenericPathProvider(topo)
        with pytest.raises(TopologyError):
            provider.paths(a, c)

    def test_generic_provider_on_custom_topology(self):
        """BFS fallback on a non-family topology: a diamond with two equal
        shortest paths through different switches."""
        from repro.topology import Topology

        topo = Topology("diamond")
        a = topo.add_accelerator("a")
        b = topo.add_accelerator("b")
        s1 = topo.add_switch("s1")
        s2 = topo.add_switch("s2")
        for sw in (s1, s2):
            topo.add_link(a, sw)
            topo.add_link(sw, b)
        assert topo.meta.get("family") is None
        provider = path_provider_for(topo)
        assert isinstance(provider, GenericPathProvider)
        paths = provider.paths(a, b, max_paths=4)
        assert len(paths) == 2
        assert all(len(p) == 2 for p in paths)
        for path in paths:
            check_path(topo, a, b, path)
        # max_paths caps the enumeration
        assert len(provider.paths(a, b, max_paths=1)) == 1

    def test_generic_provider_single_node_topology(self):
        """The degenerate single-node case: only the trivial self path."""
        from repro.topology import Topology

        topo = Topology("lonely")
        a = topo.add_accelerator("a")
        provider = GenericPathProvider(topo)
        assert provider.paths(a, a) == [[]]
        # distance cache handles a single-node BFS without links
        assert provider._distances_to(a) == [0]

    def test_generic_provider_disconnected_pair_raises(self):
        """Two islands: routing across them reports 'no path', both ways."""
        from repro.topology import Topology

        topo = Topology("islands")
        a1 = topo.add_accelerator("a1")
        a2 = topo.add_accelerator("a2")
        b1 = topo.add_accelerator("b1")
        b2 = topo.add_accelerator("b2")
        topo.add_link(a1, a2)
        topo.add_link(b1, b2)
        provider = GenericPathProvider(topo)
        assert provider.paths(a1, a2) == [[0]]
        with pytest.raises(TopologyError, match="no path"):
            provider.paths(a1, b1)
        with pytest.raises(TopologyError, match="no path"):
            provider.paths(b2, a2)
        # a RouteTable over the same topology surfaces the same error
        from repro.sim import RouteTable

        table = RouteTable(topo, max_paths=2)
        with pytest.raises(TopologyError):
            table.paths(a1, b1)

    def test_torus_paths_use_minimal_wrap(self, torus_4x4_boards):
        provider = path_provider_for(torus_4x4_boards)
        meta = torus_4x4_boards.meta
        src = meta["grid"][0][0]
        dst = meta["grid"][0][7]  # one hop west across the wrap
        paths = provider.paths(src, dst)
        assert min(len(p) for p in paths) == 1

    def test_fat_tree_same_leaf_short_path(self, fat_tree_64):
        provider = path_provider_for(fat_tree_64)
        accs = list(fat_tree_64.accelerators)
        paths = provider.paths(accs[0], accs[1])
        assert min(len(p) for p in paths) == 2

    def test_dragonfly_intra_group_path(self, dragonfly_small_fixture):
        provider = path_provider_for(dragonfly_small_fixture)
        meta = dragonfly_small_fixture.meta
        accs = list(dragonfly_small_fixture.accelerators)
        # first two accelerators share a router
        paths = provider.paths(accs[0], accs[1])
        assert len(paths[0]) == 2


class TestTrafficPatterns:
    def test_alltoall_phase_is_permutation(self):
        phase = alltoall_phase(8, 3)
        assert len(phase) == 8
        assert sorted(f.dst for f in phase) == list(range(8))
        assert all(f.dst == (f.src + 3) % 8 for f in phase)

    def test_alltoall_phase_bounds(self):
        with pytest.raises(ValueError):
            alltoall_phase(8, 0)
        with pytest.raises(ValueError):
            alltoall_phase(8, 8)

    def test_alltoall_phases_cover_all_destinations(self):
        phases = alltoall_phases(6)
        assert len(phases) == 5
        dsts_of_zero = sorted(f.dst for phase in phases for f in phase if f.src == 0)
        assert dsts_of_zero == [1, 2, 3, 4, 5]

    def test_sampled_phases_are_symmetric(self):
        phases = sampled_alltoall_phases(128, 10, seed=2)
        shifts = {f.dst - f.src if f.dst > f.src else f.dst - f.src + 128
                  for phase in phases for f in phase if f.src == 0}
        # every sampled shift s is accompanied by its complement 128 - s
        assert all((128 - s) % 128 in shifts for s in shifts)

    def test_sampled_phases_full_when_small(self):
        assert len(sampled_alltoall_phases(8, 100)) == 7

    @given(p=st.integers(4, 200), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_random_permutation_has_no_fixed_points(self, p, seed):
        flows = random_permutation(p, seed=seed)
        assert len(flows) == p
        assert sorted(f.dst for f in flows) == list(range(p))
        assert all(f.src != f.dst for f in flows)

    def test_uniform_pair_sample_excludes_self(self):
        flows = uniform_pair_sample(16, 500, seed=1)
        assert len(flows) == 500
        assert all(f.src != f.dst for f in flows)

    def test_ring_neighbor_flows(self):
        flows = ring_neighbor_flows([0, 1, 2, 3])
        assert len(flows) == 4
        bidir = ring_neighbor_flows([0, 1, 2, 3], bidirectional=True)
        assert len(bidir) == 8
        pipeline = ring_neighbor_flows([0, 1, 2, 3], wrap=False)
        assert len(pipeline) == 3

    def test_nearest_neighbor_2d(self):
        flows = nearest_neighbor_2d_flows(2, 3)
        # every flow has its reverse
        pairs = {(f.src, f.dst) for f in flows}
        assert all((d, s) in pairs for s, d in pairs)
