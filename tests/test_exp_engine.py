"""Tests for the declarative experiment engine (repro.exp)."""

import json

import numpy as np
import pytest

from repro.analysis.figures import (
    fig8_grid,
    fig8_utilization,
    fig12_grid,
    fig13_allreduce_sweep,
    fig17_allreduce_sweep,
)
from repro.exp import (
    Grid,
    ResultCache,
    Runner,
    Scenario,
    canonical_json,
    cell_seed,
    kernel_ref,
    run_grid,
    run_sweep,
    run_sweeps,
)
from repro.exp.cells import probe_cell, route_table_reuse_cell

PROBE = kernel_ref(probe_cell)

#: a deliberately tiny fig12 grid (two cheap topologies) for engine tests
FIG12_SMALL = dict(
    cluster="small",
    num_permutations=1,
    max_paths=2,
    seed=5,
    skip_keys=(
        "ft_nonblocking",
        "ft_tapered50",
        "ft_tapered75",
        "dragonfly",
        "hyperx",
        "hx2mesh",
    ),
)


class TestGrid:
    def test_cartesian_and_zipped_axes(self):
        grid = Grid(PROBE, common={"value": 0})
        grid.cross(seed=[1, 2, 3])
        grid.cross(("draws", "value"), [(1, 10), (2, 20)])
        scenarios = grid.scenarios()
        assert len(grid) == len(scenarios) == 6
        # nested-loop order: first axis outermost
        assert [s.params["seed"] for s in scenarios] == [1, 1, 2, 2, 3, 3]
        assert scenarios[0].params["draws"] == 1
        assert scenarios[1].params == {"value": 20, "seed": 1, "draws": 2}

    def test_zipped_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            Grid(PROBE).zipped(a=[1, 2], b=[1])

    def test_drop_tags_chunk_derive(self):
        grid = Grid(PROBE, chunk="group", drop=("group", "label"))
        grid.cross(seed=[1, 2])
        grid.derive(lambda p: {"group": f"g{p['seed']}", "label": f"seed-{p['seed']}"})
        scenarios = grid.scenarios()
        assert all("group" not in s.params and "label" not in s.params for s in scenarios)
        assert scenarios[0].chunk == "g1"
        assert scenarios[0].tags == {"seed": 1, "group": "g1", "label": "seed-1"}

    def test_closure_kernels_rejected(self):
        def local(**kwargs):
            return None

        with pytest.raises(ValueError):
            Grid(local)


class TestScenarioHashing:
    def test_hash_independent_of_param_order(self):
        a = Scenario(PROBE, {"value": 1, "seed": 2})
        b = Scenario(PROBE, {"seed": 2, "value": 1})
        assert a.content_hash() == b.content_hash()

    def test_hash_changes_on_param_change(self):
        a = Scenario(PROBE, {"value": 1, "seed": 2})
        b = Scenario(PROBE, {"value": 1, "seed": 3})
        assert a.content_hash() != b.content_hash()

    def test_unserialisable_params_rejected(self):
        scenario = Scenario(PROBE, {"value": object()})
        with pytest.raises(TypeError):
            scenario.content_hash()

    def test_cell_seed_stable_and_mixed(self):
        assert cell_seed("fig8", 0) == cell_seed("fig8", 0)
        assert cell_seed("fig8", 0) != cell_seed("fig8", 1)
        assert cell_seed("fig8", 0) >= 0


class TestCache:
    def test_cold_then_warm(self, tmp_path):
        grid = Grid(PROBE, common={"draws": 3}).cross(seed=[1, 2])
        cold = run_grid(grid, workers=1, cache=tmp_path)
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        warm = run_grid(grid, workers=1, cache=tmp_path)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert warm.values() == cold.values()

    def test_param_change_misses(self, tmp_path):
        run_grid(Grid(PROBE, common={"draws": 3, "seed": 1}), cache=tmp_path)
        changed = run_grid(Grid(PROBE, common={"draws": 4, "seed": 1}), cache=tmp_path)
        assert changed.cache_misses == 1

    def test_cache_entry_is_self_describing(self, tmp_path):
        scenario = Scenario(PROBE, {"draws": 1, "seed": 9})
        run_grid(scenario, cache=tmp_path)
        cache = ResultCache(tmp_path)
        path = cache.path_for(scenario.content_hash())
        payload = json.loads(path.read_text())
        assert payload["scenario"]["kernel"] == PROBE
        assert payload["scenario"]["params"] == {"draws": 1, "seed": 9}

    def test_noncacheable_cells_always_recompute(self, tmp_path):
        scenario = Scenario(
            kernel_ref(route_table_reuse_cell),
            {"a": 2, "b": 2, "x": 4, "y": 4, "max_paths": 2, "num_phases": 4},
        )
        assert not scenario.cacheable
        first = run_grid(scenario, cache=tmp_path)
        second = run_grid(scenario, cache=tmp_path)
        assert first.cache_misses == second.cache_misses == 1
        assert second.cache_hits == 0


class TestSerialParallelEquivalence:
    def test_fig8_grid_bit_identical(self):
        grid_params = dict(clusters={"tiny": (8, 8), "tiny2": (10, 10)}, num_traces=6, seed=3)
        serial = run_sweep("fig8", workers=1, cache=False, **grid_params)
        parallel = run_sweep("fig8", workers=3, cache=False, **grid_params)
        assert parallel.report.workers == 3
        assert canonical_json(serial.payload) == canonical_json(parallel.payload)

    def test_fig12_grid_bit_identical_and_cache_round_trip(self, tmp_path):
        serial = run_sweep("fig12", workers=1, cache=False, **FIG12_SMALL)
        parallel = run_sweep("fig12", workers=2, cache=tmp_path, **FIG12_SMALL)
        warm = run_sweep("fig12", workers=1, cache=tmp_path, **FIG12_SMALL)
        assert warm.report.cache_misses == 0
        blobs = {
            canonical_json(run.payload) for run in (serial, parallel, warm)
        }
        assert len(blobs) == 1  # serial == parallel == warm, bit for bit
        dist = serial.payload["2D torus"]["distribution"]
        assert isinstance(dist, np.ndarray) and len(dist) == 1024

    def test_run_sweeps_matches_individual_runs(self):
        fig8_params = dict(clusters={"tiny": (8, 8)}, num_traces=4, seed=1)
        runs, report = run_sweeps(
            {"fig8": fig8_params, "fig16": {"shapes": ((4, 4),)}},
            workers=1,
            cache=False,
        )
        assert len(report) == len(runs["fig8"].report) + len(runs["fig16"].report)
        single = run_sweep("fig8", workers=1, cache=False, **fig8_params)
        assert canonical_json(runs["fig8"].payload) == canonical_json(single.payload)


class TestFigureSemantics:
    def test_fig8_matches_direct_loop(self):
        """The engine-backed fig8 reproduces the original nested loops."""
        from repro.allocation import (
            AllocatorOptions,
            BoardGrid,
            GreedyAllocator,
            sample_job_mixes,
        )
        from repro.analysis.figures import FIG8_PRESETS

        x = y = 8
        data = fig8_utilization(clusters={"tiny": (x, y)}, num_traces=5, seed=2)
        mixes = sample_job_mixes(x * y, 5, seed=2, max_job_boards=x * y)
        for preset, sort in FIG8_PRESETS:
            label = preset + ("+sort" if sort else "")
            expected = []
            for mix in mixes:
                grid = BoardGrid(x, y)
                allocator = GreedyAllocator(grid, AllocatorOptions.named(preset))
                trace = mix.sorted_by_size() if sort else mix
                expected.append(allocator.allocate_trace(trace).utilization)
            assert data["tiny"][label] == pytest.approx(expected, abs=0)

    def test_fig17_kwargs_pass_through(self):
        """Regression: fig17 must forward every kwarg to the fig13 sweep."""
        sizes = (1 << 20, 1 << 24)
        series = fig17_allreduce_sweep(message_sizes=sizes, algorithms=("rings",))
        # small-cluster default: the Hx4Mesh exists (the large cluster has it
        # too, so also anchor on the small cluster's accelerator count below)
        assert "Hx4Mesh" in series
        hx = series["Hx4Mesh"]
        assert list(hx) == ["rings"]  # algorithms forwarded
        assert [s for s, _ in hx["rings"]] == list(sizes)  # sizes forwarded
        explicit = fig13_allreduce_sweep(
            "small", message_sizes=sizes, algorithms=("rings",)
        )
        assert series == explicit  # cluster default is "small", nothing else


class TestGridChunking:
    def test_chunked_cells_share_a_worker_task(self):
        grid = fig8_grid(clusters={"a": (8, 8), "b": (8, 8)}, num_traces=2, seed=0)
        report = run_grid(grid, workers=1, cache=False)
        assert report.chunks == 2  # one chunk per cluster, not per cell
        assert len(report) == 12

    def test_fig12_chunks_by_topology(self):
        grid = fig12_grid(**FIG12_SMALL)
        chunks = {s.chunk for s in grid.scenarios()}
        assert chunks == {"small/hx4mesh", "small/torus"}


class TestCacheCorruption:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        from repro import obs
        from repro.exp.grid import scenarios_of

        grid = Grid(PROBE, common={"draws": 3}).cross(seed=[1, 2])
        cold = run_grid(grid, workers=1, cache=tmp_path)
        path = ResultCache(tmp_path).path_for(scenarios_of(grid)[0].content_hash())
        path.write_text(path.read_text()[:17])   # hand-truncated entry

        corrupt = obs.counter("exp.cache_corrupt")
        before = corrupt.value
        with pytest.warns(RuntimeWarning, match="corrupted result-cache entry"):
            mixed = run_grid(grid, workers=1, cache=tmp_path)
        assert corrupt.value == before + 1
        assert mixed.cache_hits == 1 and mixed.cache_misses == 1
        assert mixed.values() == cold.values()
        assert path.with_suffix(path.suffix + ".corrupt").exists()

        warm = run_grid(grid, workers=1, cache=tmp_path)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert warm.values() == cold.values()


class TestRunnerHardening:
    @staticmethod
    def _fragile(**params):
        from repro.exp.cells import fragile_cell

        return Scenario(kernel_ref(fragile_cell), params)

    def test_worker_crash_retried_on_fresh_pool(self, tmp_path):
        from repro import obs

        sentinel = str(tmp_path / "crash.sentinel")
        cells = [self._fragile(mode="crash", sentinel=sentinel, value=0)]
        cells += [self._fragile(mode="ok", value=i) for i in (1, 2, 3)]
        retries = obs.counter("exp.worker_retries")
        before = retries.value
        report = Runner(workers=2, cache=False, retry_backoff=0.05).run(cells)
        assert retries.value > before
        assert sorted(v["value"] for v in report.values()) == [0, 1, 2, 3]
        assert report.stats()["quarantined"] == 0

    def test_poison_cell_quarantined_others_complete(self):
        from repro import obs

        cells = [self._fragile(mode="raise", value=0)]
        cells += [self._fragile(mode="ok", value=i) for i in (1, 2, 3)]
        quarantined = obs.counter("exp.cells_quarantined")
        before = quarantined.value
        report = Runner(workers=2, cache=False, retry_backoff=0.05).run(cells)
        assert quarantined.value == before + 1
        assert report.stats()["quarantined"] == 1
        assert report.cells[0].value is None
        assert "poison cell" in report.cells[0].error
        assert sorted(c.value["value"] for c in report.cells[1:]) == [1, 2, 3]

    def test_hung_cell_times_out_and_is_quarantined(self):
        from repro import obs

        cells = [self._fragile(mode="hang", seconds=60.0, value=0)]
        cells += [self._fragile(mode="ok", value=i) for i in (1, 2)]
        timeouts = obs.counter("exp.cell_timeouts")
        before = timeouts.value
        report = Runner(
            workers=2, cache=False, cell_timeout=2.0, retry_backoff=0.05
        ).run(cells)
        assert timeouts.value > before
        assert report.cells[0].error == "timeout"
        assert sorted(c.value["value"] for c in report.cells[1:]) == [1, 2]

    def test_serial_path_still_propagates(self):
        with pytest.raises(RuntimeError, match="poison cell"):
            Runner(workers=1, cache=False).run([self._fragile(mode="raise")])


class TestWarmPoolAndChunkSplitting:
    def test_single_topology_chunk_fans_out(self):
        """Regression: a 1-topology x N-cells grid must not serialize on one
        worker — oversized chunks split into contiguous slices."""
        def build():
            grid = Grid(PROBE, common={"value": 7, "draws": 2}, chunk="value")
            grid.cross(seed=list(range(8)))
            return grid

        serial = run_grid(build(), workers=1, cache=False)
        assert serial.chunks == 1
        parallel = run_grid(build(), workers=2, cache=False)
        assert parallel.chunks >= 2
        assert parallel.values() == serial.values()

    def test_split_preserves_cell_order(self):
        grid = Grid(PROBE, common={"value": 0}, chunk="value")
        grid.cross(seed=list(range(5)))
        report = run_grid(grid, workers=2, cache=False)
        assert [c.scenario.params["seed"] for c in report.cells] == list(range(5))

    def test_pool_persists_across_runs_and_close(self):
        cells = [Scenario(PROBE, {"value": i}) for i in range(3)]
        with Runner(workers=2, cache=False) as runner:
            runner.run(cells)
            pool = runner._pool
            assert pool is not None
            runner.run(cells)
            assert runner._pool is pool  # same executor, no respawn
        assert runner._pool is None  # close() tore it down

    def test_workers_attach_seeded_route_tables(self, hx2mesh_4x4):
        """A warm pool's initializer seeds workers with the parent's shared
        tables: workers attach instead of rebuilding."""
        from repro import obs
        from repro.exp.cells import maxmin_permutation_cell
        from repro.sim import FlowSimulator, clear_route_tables, random_permutation

        clear_route_tables()
        # Parent-side table with routed pairs (what run() will share).
        sim = FlowSimulator(hx2mesh_4x4, max_paths=8)
        sim.maxmin_rates(random_permutation(hx2mesh_4x4.num_accelerators, seed=1))
        cells = [
            Scenario(kernel_ref(maxmin_permutation_cell), dict(a=2, b=2, x=4, y=4, seed=s))
            for s in range(4)
        ]
        serial = Runner(workers=1, cache=False).run(cells)
        attached = obs.counter("routing.tables_attached")
        built = obs.counter("routing.tables_built")
        seeded = obs.counter("exp.workers_seeded")
        obs.enable()  # worker metric deltas only merge while enabled
        try:
            b_attached, b_built, b_seeded = attached.value, built.value, seeded.value
            with Runner(workers=2, cache=False) as runner:
                report = runner.run(cells)
            assert seeded.value == b_seeded + 2
            assert attached.value > b_attached, "no worker attached the seed"
            assert built.value == b_built, "a seeded worker rebuilt the table"
        finally:
            obs.disable()
        assert report.values() == serial.values()
        clear_route_tables()
