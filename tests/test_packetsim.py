"""Tests for the discrete-event engine and the packet-level simulator."""

import numpy as np
import pytest

from repro.core import build_hammingmesh
from repro.sim import (
    EventEngine,
    FlowSimulator,
    PacketNetwork,
    PacketSimConfig,
    random_permutation,
    ring_neighbor_flows,
)
from repro.topology import build_fat_tree


class TestEventEngine:
    def test_events_run_in_time_order(self):
        engine = EventEngine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == pytest.approx(3.0)
        assert engine.processed_events == 3

    def test_simultaneous_events_fifo(self):
        engine = EventEngine()
        order = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_events_can_schedule_more_events(self):
        engine = EventEngine()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 4:
                engine.schedule(1.0, lambda: chain(n + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]
        assert engine.now == pytest.approx(4.0)

    def test_until_limit(self):
        engine = EventEngine()
        hits = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda t=t: hits.append(t))
        engine.run(until=2.5)
        assert hits == [1.0, 2.0]
        assert engine.pending_events == 1

    def test_cannot_schedule_in_the_past(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: engine.schedule(-2.0, lambda: None))
        with pytest.raises(ValueError):
            engine.run()

    def test_reset(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        engine.reset()
        assert engine.pending_events == 0
        assert engine.now == 0.0


class TestPacketNetwork:
    def test_single_message_latency_and_bandwidth(self, fat_tree_64):
        config = PacketSimConfig(max_paths=1)
        net = PacketNetwork(fat_tree_64, config=config)
        msg = net.send(0, 1, 65536)
        result = net.run()
        assert result.all_finished
        assert msg.completion_time > 0
        # 64 KiB over a 200 GB/s access link: at least the pure serialisation time
        assert msg.completion_time >= 65536 / 200e9

    def test_zero_sized_message_still_completes(self, fat_tree_64):
        net = PacketNetwork(fat_tree_64)
        msg = net.send(0, 2, 1)
        net.run()
        assert msg.finished
        assert msg.packets_total == 1

    def test_rejects_self_send(self, fat_tree_64):
        net = PacketNetwork(fat_tree_64)
        with pytest.raises(ValueError):
            net.send(3, 3, 100)

    def test_contention_slows_messages_down(self, fat_tree_64):
        # Two senders to the same destination share its ejection link.
        lone = PacketNetwork(fat_tree_64)
        lone.send(0, 5, 1 << 20)
        t_alone = lone.run().finish_time

        shared = PacketNetwork(fat_tree_64)
        shared.send(0, 5, 1 << 20)
        shared.send(1, 5, 1 << 20)
        t_shared = shared.run().finish_time
        assert t_shared > t_alone * 1.6

    def test_permutation_matches_flowsim_on_hxmesh(self, hx2mesh_4x4):
        """Packet-level and flow-level simulators agree on steady-state rates."""
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=2)
        size = 1 << 18
        net = PacketNetwork(hx2mesh_4x4, config=PacketSimConfig(max_paths=4))
        net.send_flows(flows, size)
        result = net.run()
        assert result.all_finished
        packet_mean = result.message_bandwidths().mean()

        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        flow_mean = sim.maxmin_rates(flows).flow_rates.mean() * 50e9
        assert packet_mean == pytest.approx(flow_mean, rel=0.35)

    def test_ring_traffic_full_rate(self, hx2mesh_4x4):
        """Neighbour ring traffic should run close to one port of bandwidth."""
        order = list(range(hx2mesh_4x4.num_accelerators))
        from repro.collectives import grid_ring_orders

        order = grid_ring_orders(hx2mesh_4x4)[0]
        flows = ring_neighbor_flows(order)
        size = 1 << 18
        net = PacketNetwork(hx2mesh_4x4, config=PacketSimConfig(max_paths=2))
        net.send_flows(flows, size)
        result = net.run()
        bw = result.message_bandwidths()
        assert bw.min() > 0.5 * 50e9

    def test_link_busy_time_accounting(self, fat_tree_64):
        net = PacketNetwork(fat_tree_64)
        net.send(0, 9, 1 << 20)
        result = net.run()
        assert result.link_busy_time.sum() > 0
        util = result.link_utilization()
        assert util.max() <= 1.0 + 1e-9
        # a lone message keeps its bottleneck link busy almost continuously
        assert util.max() > 0.5

    def test_aggregate_bandwidth_positive(self, hx2mesh_4x4):
        net = PacketNetwork(hx2mesh_4x4)
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=1)
        net.send_flows(flows, 1 << 16)
        result = net.run()
        assert result.aggregate_bandwidth() > 0
