"""Tests for the analysis/experiment harness (Table II, figures, reports)."""

import numpy as np
import pytest

from repro.analysis import (
    DEFAULT_FRACTIONS,
    build_table2,
    cluster_configs,
    dnn_iteration_times,
    fig7_jobsize_cdf,
    fig8_utilization,
    fig9_upper_traffic,
    fig10_failures,
    fig11_alltoall_sweep,
    fig13_allreduce_sweep,
    fig15_cost_savings,
    fig16_hamiltonian_cycles,
    format_distribution_summary,
    format_nested_table,
    format_series,
    format_table2,
    measure_topology,
    network_profiles,
    small_cluster_configs,
)
from repro.analysis.table2 import _savings


class TestClusters:
    def test_small_cluster_has_eight_rows(self):
        configs = small_cluster_configs()
        assert len(configs) == 8
        assert {c.key for c in configs} >= {"ft_nonblocking", "hx2mesh", "hx4mesh", "torus"}

    def test_all_small_configs_build(self):
        for config in small_cluster_configs():
            topo = config.build()
            assert abs(topo.num_accelerators - config.num_accelerators) <= 64

    def test_costs_follow_paper_ordering(self):
        configs = {c.key: c for c in small_cluster_configs()}
        assert configs["hx4mesh"].cost.total < configs["hx2mesh"].cost.total
        assert configs["hx2mesh"].cost.total < configs["ft_nonblocking"].cost.total

    def test_unknown_cluster(self):
        with pytest.raises(ValueError):
            cluster_configs("medium")

    def test_large_cluster_configs_exist(self):
        configs = cluster_configs("large")
        assert len(configs) == 8
        assert all(c.num_accelerators >= 16000 for c in configs)


class TestMeasurements:
    def test_measure_topology_summary(self, hx2mesh_4x4):
        summary = measure_topology(hx2mesh_4x4, num_phases=8, max_paths=4)
        assert 0.0 < summary.alltoall_fraction <= 1.0
        assert 0.5 < summary.allreduce_fraction <= 1.0
        assert set(summary.as_dict()) == {"name", "alltoall_fraction", "allreduce_fraction"}


class TestTable2:
    def test_savings_helper(self):
        assert _savings(10.0, 0.5, 20.0, 1.0) == pytest.approx(1.0)
        assert _savings(10.0, 1.0, 20.0, 1.0) == pytest.approx(2.0)
        assert _savings(10.0, 0.0, 20.0, 1.0) == 0.0

    def test_build_table2_tiny_configs(self):
        """Run the Table II pipeline on miniature stand-ins for speed."""
        from repro.analysis.clusters import ClusterTopology
        from repro.core.hammingmesh import build_hammingmesh
        from repro.cost import fat_tree_cost, hammingmesh_cost
        from repro.core.params import hx2mesh
        from repro.topology import build_fat_tree

        configs = [
            ClusterTopology(
                "ft_nonblocking", "nonblocking fat tree", "fattree", 64,
                lambda: build_fat_tree(64), fat_tree_cost(64), 2, {"cost": 1.0},
            ),
            ClusterTopology(
                "hx2mesh", "Hx2Mesh", "hammingmesh", 64,
                lambda: build_hammingmesh(2, 2, 4, 4),
                hammingmesh_cost(hx2mesh(4, 4)), 4, {"cost": 0.5},
            ),
        ]
        rows = build_table2(configs=configs, num_phases=8, max_paths=4)
        assert len(rows) == 2
        by_key = {r.key: r for r in rows}
        assert by_key["ft_nonblocking"].global_saving == pytest.approx(1.0)
        assert by_key["ft_nonblocking"].global_bw_percent > 80
        assert by_key["hx2mesh"].allreduce_bw_percent > 90
        assert by_key["hx2mesh"].allreduce_saving > 0
        assert by_key["hx2mesh"].diameter == 4
        text = format_table2(rows)
        assert "Hx2Mesh" in text and "glob BW%" in text


class TestFigureGenerators:
    def test_profiles_cover_all_topologies(self):
        profiles = network_profiles("small")
        assert set(profiles) == {c.key for c in small_cluster_configs()}
        assert profiles["hx2mesh"].alltoall_bandwidth < profiles["ft_nonblocking"].alltoall_bandwidth

    def test_default_fractions_sane(self):
        for entry in DEFAULT_FRACTIONS.values():
            assert 0.0 < entry["alltoall"] <= 1.0
            assert 0.0 < entry["allreduce"] <= 1.0

    def test_fig7(self):
        data = fig7_jobsize_cdf(cluster_boards=256, num_mixes=20, seed=1)
        for key in ("original", "sampled"):
            values = [v for _, v in data[key]]
            assert values == sorted(values)
            assert values[-1] == pytest.approx(1.0, abs=1e-6)

    def test_fig8_small(self):
        data = fig8_utilization(
            clusters={"tiny": (8, 8)}, num_traces=5, seed=1
        )
        presets = data["tiny"]
        assert all(0.0 <= u <= 1.0 for utils in presets.values() for u in utils)
        base = np.mean(presets["greedy"])
        best = np.mean(presets["greedy+transpose+aspect+sort"])
        assert best >= base - 0.05

    def test_fig9_small(self):
        data = fig9_upper_traffic(
            clusters={"tiny": (16, 16, 4)}, num_traces=3, seed=0
        )
        for preset, fractions in data["tiny"].items():
            assert 0.0 <= fractions["alltoall"] <= 1.0
            assert fractions["allreduce"] <= fractions["alltoall"] + 1e-9

    def test_fig10_small(self):
        data = fig10_failures(
            clusters={"tiny": ((8, 8), (0, 8))}, num_trials=3, seed=0
        )
        series = data["tiny"]["sorted"]
        assert [n for n, _ in series] == [0, 8]
        assert all(0.0 <= u <= 1.0 for _, u in series)

    def test_fig11_sweep_shape(self):
        series = fig11_alltoall_sweep("small")
        assert "Hx2Mesh" in series and "nonblocking fat tree" in series
        for points in series.values():
            fractions = [f for _, f in points]
            assert all(0 <= f <= 1.0 + 1e-9 for f in fractions)
            assert fractions[-1] >= fractions[0]  # saturates with message size
        # HxMesh saturates below the fat tree
        assert series["Hx2Mesh"][-1][1] < series["nonblocking fat tree"][-1][1]

    def test_fig13_sweep_crossover(self):
        series = fig13_allreduce_sweep("large")
        hx = series["Hx2Mesh"]
        assert set(hx) == {"rings", "torus"}
        sizes = [s for s, _ in hx["rings"]]
        rings = dict(hx["rings"])
        torus = dict(hx["torus"])
        # torus algorithm wins clearly at the smallest size (its sqrt(p)
        # latency vs the rings' 2p latency) ...
        assert torus[sizes[0]] >= rings[sizes[0]]
        # ... and the rings algorithm catches up as messages grow (its
        # asymptotic bandwidth is 2x the torus algorithm's).
        ratio_small = rings[sizes[0]] / torus[sizes[0]]
        ratio_large = rings[sizes[-1]] / torus[sizes[-1]]
        assert ratio_large > ratio_small
        # switched topologies expose only the ring algorithm
        assert list(series["nonblocking fat tree"]) == ["bidirectional-ring"]

    def test_fig15_savings_structure(self):
        savings = fig15_cost_savings()
        assert set(savings) == {"Hx2Mesh", "Hx4Mesh"}
        for per_workload in savings.values():
            for per_baseline in per_workload.values():
                assert all(v > 0 for v in per_baseline.values())
        resnet = next(k for k in savings["Hx4Mesh"] if "ResNet" in k)
        # headline result: Hx4Mesh much cheaper than the nonblocking fat tree
        assert savings["Hx4Mesh"][resnet]["nonblocking fat tree"] > 3.0

    def test_fig16_cycles(self):
        cycles = fig16_hamiltonian_cycles()
        assert set(cycles) == {(4, 4), (8, 4), (9, 3), (16, 8)}

    def test_dnn_iteration_times_table(self):
        times = dnn_iteration_times()
        gpt3 = next(k for k in times if k.startswith("GPT-3 ("))
        per_topo = times[gpt3]
        assert per_topo["nonblocking fat tree"] < per_topo["2D torus"]
        assert per_topo["nonblocking fat tree"] <= per_topo["Hx2Mesh"]


class TestReport:
    def test_format_series(self):
        text = format_series("t", {"a": [(1, 0.5), (2, 0.6)], "b": [(1, 0.7)]})
        assert "t" in text and "0.5" in text and "-" in text

    def test_format_distribution_summary(self):
        text = format_distribution_summary("d", {"x": [0.1, 0.2, 0.3]})
        assert "mean" in text and "x" in text

    def test_format_nested_table(self):
        text = format_nested_table("n", {"r": {"c1": 1.0, "c2": 2.0}})
        assert "r" in text and "1.00" in text
