"""Cross-module integration tests: end-to-end flows a user of the library
would exercise, spanning topology construction, routing, simulation,
collectives, allocation, cost and workload models together."""

import numpy as np
import pytest

import repro
from repro.allocation import AllocatorOptions, BoardGrid, GreedyAllocator, JobRequest
from repro.analysis import measure_allreduce_fraction, measure_alltoall_fraction
from repro.collectives import (
    Torus2DAllreduce,
    dual_ring_steady_flows,
    ring_allreduce_schedule,
    ring_orders_for,
)
from repro.core import HxMeshRouter, build_hammingmesh
from repro.cost import fat_tree_cost, hammingmesh_cost
from repro.core.params import hx2mesh
from repro.sim import FlowSimulator, PacketNetwork, PacketSimConfig, random_permutation
from repro.topology import build_fat_tree
from repro.workloads import NetworkProfile, get_workload


class TestPublicAPI:
    def test_package_exports(self):
        assert repro.__version__
        assert callable(repro.build_hammingmesh)
        assert callable(repro.FlowSimulator)
        topo = repro.build_topology("hammingmesh", a=2, b=2, x=2, y=2)
        assert topo.num_accelerators == 16

    def test_quickstart_sequence(self):
        """The README quick-start must work as written."""
        topo = build_hammingmesh(2, 2, 4, 4)
        sim = FlowSimulator(topo)
        bw = sim.alltoall_bandwidth(num_phases=8)
        assert 0.0 < bw <= 1.0
        cost = hammingmesh_cost(hx2mesh(4, 4))
        assert cost.total > 0


class TestBandwidthCostTradeoff:
    """The paper's headline: HxMesh trades rarely-needed global bandwidth for
    cost while keeping allreduce bandwidth at full rate."""

    def test_small_scale_tradeoff(self):
        hx = build_hammingmesh(2, 2, 8, 8)        # 256 accelerators
        ft = build_fat_tree(256)
        hx_a2a = measure_alltoall_fraction(hx, num_phases=16)
        ft_a2a = measure_alltoall_fraction(ft, num_phases=16)
        hx_ar = measure_allreduce_fraction(hx)
        ft_ar = measure_allreduce_fraction(ft)
        hx_cost = hammingmesh_cost(hx2mesh(8, 8)).total
        ft_cost = fat_tree_cost(256).total
        # fat tree has much more global bandwidth...
        assert ft_a2a > 2 * hx_a2a
        # ...but HxMesh matches it on allreduce at a fraction of the cost.
        assert hx_ar == pytest.approx(ft_ar, abs=0.05)
        assert hx_cost < ft_cost / 2
        # cost per allreduce bandwidth strongly favours HxMesh
        assert (hx_cost / hx_ar) < (ft_cost / ft_ar) / 2

    def test_allreduce_uses_all_four_ports(self):
        topo = build_hammingmesh(2, 2, 4, 4)
        sim = FlowSimulator(topo, max_paths=4)
        flows = dual_ring_steady_flows(ring_orders_for(topo))
        result = sim.symmetric_rate(flows)
        # every accelerator sends on 4 flows at ~1 port each = full injection
        per_acc_send = result.min_rate * 4
        assert per_acc_send == pytest.approx(sim.injection_capacity, rel=0.05)


class TestCollectiveOnTopology:
    def test_ring_schedule_runs_through_flowsim(self):
        topo = build_hammingmesh(2, 2, 3, 3)
        sim = FlowSimulator(topo, max_paths=2)
        order = ring_orders_for(topo)[0]
        size = 8 << 20
        schedule = ring_allreduce_schedule(order, size=size, bidirectional=True)
        t = schedule.time_flowsim(sim, alpha=1e-6, bytes_per_unit=50e9)
        # bandwidth-optimal lower bound for a bidirectional ring with 2 NICs
        p = len(order)
        lower = 2 * (p - 1) / p * size / (2 * 50e9)
        assert t >= lower * 0.9
        assert t < lower * 5

    def test_torus_algorithm_runs_through_flowsim(self):
        topo = build_hammingmesh(2, 2, 3, 3)
        sim = FlowSimulator(topo, max_paths=2)
        alg = Torus2DAllreduce.for_topology(topo)
        schedule = alg.schedule(size=4 << 20)
        t = schedule.time_flowsim(sim, alpha=1e-6, bytes_per_unit=50e9)
        assert t > 0

    def test_packet_sim_runs_one_allreduce_round(self):
        topo = build_hammingmesh(2, 2, 3, 3)
        order = ring_orders_for(topo)[0]
        schedule = ring_allreduce_schedule(order, size=len(order) * 8192,
                                           bidirectional=False)
        net = PacketNetwork(topo, config=PacketSimConfig(max_paths=2))
        for transfer in schedule.phases[0]:
            net.send(transfer.src, transfer.dst, transfer.size)
        result = net.run()
        assert result.all_finished


class TestAllocationOnRealHxMesh:
    def test_allocated_job_gets_isolated_bandwidth(self):
        """A job placed on a virtual sub-HxMesh sustains full ring bandwidth
        on its own boards, even when the sub-mesh is non-contiguous."""
        topo = build_hammingmesh(2, 2, 4, 4)
        grid = BoardGrid(4, 4)
        # fail a column to force a non-contiguous allocation
        grid.fail_boards([(0, 1), (1, 1), (2, 1), (3, 1)])
        allocator = GreedyAllocator(grid, AllocatorOptions(transpose=True))
        submesh = allocator.allocate(JobRequest(0, 2, 3))
        assert submesh is not None
        assert len(set(submesh.cols)) == 3

        # map the job's boards to accelerator ranks and run a ring over them
        rank_of = topo.accelerator_index()
        boards = topo.meta["boards"]
        ranks = []
        for coord in submesh.boards():
            ranks.extend(rank_of[n] for n in boards[coord].all_nodes())
        sim = FlowSimulator(topo, max_paths=4)
        from repro.sim.traffic import ring_neighbor_flows

        flows = ring_neighbor_flows(ranks, bidirectional=True)
        rate = sim.symmetric_rate(flows).min_rate
        assert rate > 0.4  # each direction sustains close to a port's bandwidth

    def test_job_interference_freedom(self):
        """Boards are never shared, so per-board port load is bounded by the
        jobs' own traffic (the paper's interference-freedom argument)."""
        grid = BoardGrid(8, 8)
        allocator = GreedyAllocator(grid, AllocatorOptions(transpose=True, aspect_ratio=True))
        placed = {}
        for i, boards in enumerate([16, 9, 6, 4, 4, 2, 1]):
            sm = allocator.allocate(JobRequest.from_board_count(i, boards))
            if sm is not None:
                placed[i] = sm
        owners = {}
        for job, sm in placed.items():
            for coord in sm.boards():
                assert coord not in owners
                owners[coord] = job


class TestWorkloadEndToEnd:
    def test_measured_profile_feeds_workload_model(self):
        """Full chain: topology -> flow sim -> profile -> iteration time."""
        topo = build_hammingmesh(2, 2, 8, 8)
        a2a = measure_alltoall_fraction(topo, num_phases=12)
        ar = measure_allreduce_fraction(topo)
        profile = NetworkProfile.from_measurements(
            "8x8 Hx2Mesh", "hammingmesh",
            alltoall_fraction=a2a, allreduce_fraction=ar, diameter=4,
        )
        wl = get_workload("dlrm")
        t = wl.iteration_time(profile)
        assert wl.compute_time < t < 10 * wl.compute_time

    def test_router_paths_feed_packet_sim(self):
        topo = build_hammingmesh(2, 2, 3, 3)
        router = HxMeshRouter(topo)
        accs = list(topo.accelerators)
        paths = router.paths(accs[0], accs[-1], max_paths=2)
        net = PacketNetwork(topo)
        msg = net.send(0, len(accs) - 1, 65536)
        net.run()
        assert msg.finished
        # sanity: the message cannot be faster than the hop latency of the
        # shortest path the router reports
        min_latency = len(paths[0]) * 1e-9
        assert msg.completion_time >= min_latency
