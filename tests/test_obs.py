"""Tests for the unified observability layer (repro.obs).

Covers the metrics registry and tracer in isolation, the worker-delta
merge protocol through the experiment engine (serial and parallel runs of
one grid must produce identical metric/span aggregates), the report
renderer, and the regression that flipping the global switch never changes
simulation *results* — only whether measurement data is collected.
"""

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.cluster import ClusterSimConfig, ClusterSimulator, FailureModel
from repro.core import build_hammingmesh
from repro.exp import Grid, Runner, kernel_ref
from repro.exp.cells import flow_alltoall_cell
from repro.obs import registry, report
from repro.obs.registry import MetricsRegistry
from repro.sim import FlowSimulator, clear_route_tables, get_backend, random_permutation


@pytest.fixture
def enabled():
    """Clean enabled window; restores the disabled default afterwards."""
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def disabled():
    """Clean disabled window (the default state, made explicit)."""
    obs.reset()
    obs.disable()
    yield
    obs.disable()
    obs.reset()


class TestRegistry:
    def test_counter_parent_chain(self, disabled):
        parent = obs.counter("test.aggregate")
        child = registry.Counter("local", parent=parent)
        child.inc()
        child.inc(4)
        assert child.value == 5
        assert parent.value == 5  # counters are always live, even disabled

    def test_histogram_gated_by_switch(self, enabled):
        hist = obs.histogram("test.hist")
        obs.disable()
        hist.observe(10)
        assert hist.count == 0
        obs.enable()
        for value in (1, 3, 1000):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 1 and hist.max == 1000
        assert hist.mean == pytest.approx(1004 / 3)
        assert hist.buckets == {0: 1, 2: 1, 10: 1}  # 2**10 = 1024 >= 1000

    def test_probe_bounded_by_decimation(self, enabled):
        probe = registry.Probe("test.series", capacity=8)
        for t in range(100):
            probe.record(float(t), float(t * 2))
        assert len(probe.samples) < 8
        assert probe.stride > 1
        assert probe.samples[0] == (0.0, 0.0)  # first sample survives

    def test_default_schema_families(self, disabled):
        snap = obs.snapshot()
        names = (
            list(snap["counters"])
            + list(snap["gauges"])
            + list(snap["histograms"])
            + list(snap["probes"])
        )
        families = {name.split(".", 1)[0] for name in names}
        assert {"routing", "flowsim", "packet", "engine", "exp", "cluster"} <= families

    def test_reset_keeps_live_instrument_references(self, disabled):
        counter = obs.counter("test.live_ref")
        counter.inc(7)
        obs.reset()
        assert counter.value == 0
        counter.inc()
        assert obs.snapshot()["counters"]["test.live_ref"] == 1

    def test_delta_roundtrip_merges_exactly(self, enabled):
        marker = registry.capture()
        obs.counter("test.delta_c").inc(3)
        obs.gauge("test.delta_g").add(2.5)
        hist = obs.histogram("test.delta_h")
        hist.observe(4)
        hist.observe(4)
        obs.probe("test.delta_p").record(1.0, 9.0)
        delta = registry.export_delta(marker)
        target = MetricsRegistry(declare_defaults=False)
        target.merge(delta)
        snap = target.snapshot()
        assert snap["counters"]["test.delta_c"] == 3
        assert snap["gauges"]["test.delta_g"] == 2.5
        assert snap["histograms"]["test.delta_h"]["count"] == 2
        assert snap["histograms"]["test.delta_h"]["buckets"] == {"2": 2}
        assert snap["probes"]["test.delta_p"]["samples"] == [[1.0, 9.0]]
        # Pre-marker state did not leak into the delta.
        assert "exp.cells_live" not in snap["counters"]


class TestTracing:
    def test_disabled_tracer_records_nothing(self, disabled):
        with obs.span("should_not_appear"):
            obs.add_span("nor_this", 0.0, 1.0)
        assert obs.TRACER.finished == []

    def test_nested_spans_build_slash_paths(self, enabled):
        with obs.span("outer", kind="test"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        paths = [rec["path"] for rec in obs.TRACER.finished]
        assert paths == ["outer/inner", "outer/inner", "outer"]
        summary = obs.span_summary()
        assert summary["outer"]["count"] == 1
        assert summary["outer/inner"]["count"] == 2
        assert summary["outer"]["clock"] == "wall"

    def test_manual_sim_clock_spans(self, enabled):
        obs.add_span("cluster.job", 10.0, 50.0, job_id=3)
        obs.add_span("running", 12.0, 50.0, parent="cluster.job")
        summary = obs.span_summary()
        assert summary["cluster.job"]["clock"] == "sim"
        assert summary["cluster.job"]["total_seconds"] == 40.0
        assert summary["cluster.job/running"]["total_seconds"] == 38.0

    def test_span_annotate(self, enabled):
        with obs.span("work") as sp:
            sp.annotate(rows=17)
        assert obs.TRACER.finished[0]["attrs"]["rows"] == 17


class TestTraceExportAndReport:
    def test_trace_roundtrip_and_renderer(self, enabled, tmp_path):
        obs.counter("test.render_c").inc(2)
        with obs.span("render.outer"):
            with obs.span("leaf"):
                pass
        path = obs.write_trace(tmp_path / "trace.json")
        trace = json.loads(path.read_text())
        assert trace["version"] == obs.TRACE_VERSION
        assert trace["enabled"] is True
        assert trace["metrics"]["counters"]["test.render_c"] == 2
        assert trace["span_summary"]["render.outer/leaf"]["count"] == 1
        text = report.format_trace(trace)
        assert "[test]" in text and "test.render_c" in text
        assert "render.outer" in text and "leaf" in text
        assert report.main([str(path), "--top", "5"]) == 0

    def test_empty_trace_renders(self, disabled):
        text = report.format_trace(obs.export_trace())
        assert "(none recorded)" in text


def _small_grid() -> Grid:
    """A fig12-style grid: two topologies, chunked by topology, 3 seeds each."""
    grid = Grid(
        kernel_ref(flow_alltoall_cell),
        common={"max_paths": 2, "num_phases": 2},
        chunk="topo",
        drop=("topo",),
    )
    grid.cross(("a", "b", "x", "y"), [(1, 1, 4, 4), (2, 2, 2, 2)])
    grid.cross(seed=[1, 2, 3])
    grid.derive(lambda p: {"topo": f"hm-{p['a']}x{p['b']}x{p['x']}x{p['y']}"})
    return grid


def _run_with_aggregates(workers: int):
    """Run the small grid and return (values, counters, histograms, span counts)."""
    clear_route_tables()
    obs.reset()
    obs.enable()
    try:
        run = Runner(workers=workers, cache=False).run(_small_grid())
    finally:
        obs.disable()
    snap = obs.snapshot()
    hists = {
        name: {"count": h["count"], "sum": h["sum"], "buckets": h["buckets"]}
        for name, h in snap["histograms"].items()
    }
    spans = {path: agg["count"] for path, agg in obs.span_summary().items()}
    return run.values(), dict(snap["counters"]), hists, spans


class TestRunnerAggregates:
    """The worker-merge protocol: serial == parallel, modulo timing floats."""

    def test_serial_and_parallel_aggregates_identical(self):
        serial_values, serial_counters, serial_hists, serial_spans = _run_with_aggregates(1)
        parallel_values, parallel_counters, parallel_hists, parallel_spans = (
            _run_with_aggregates(2)
        )
        assert serial_values == parallel_values
        assert serial_counters == parallel_counters
        assert serial_hists == parallel_hists
        assert serial_spans == parallel_spans
        # Sanity on the aggregates themselves, not just their equality.
        assert serial_counters["exp.cells_live"] == 6
        assert serial_counters["exp.cells_cached"] == 0
        # One table per cell: route_table_for shares by topology *object*,
        # and every cell invocation builds its own topology.
        assert serial_counters["routing.tables_built"] == 6
        assert serial_counters["flowsim.assignments_built"] > 0
        assert serial_counters["routing.pair_misses"] > 0
        assert serial_spans["exp.cell"] == 6

    def test_cached_cells_attributed_distinctly(self, tmp_path):
        clear_route_tables()
        obs.reset()
        obs.enable()
        try:
            runner = Runner(workers=1, cache=tmp_path)
            cold = runner.run(_small_grid())
            obs.TRACER.reset()
            warm = runner.run(_small_grid())
        finally:
            obs.disable()
        assert warm.values() == cold.values()
        stats = warm.stats()
        assert stats["cache_hits"] == 6
        assert stats["compute_seconds"] == 0.0
        assert stats["replayed_seconds"] > 0.0
        # A warm cell's spent time is the cache lookup, far below its compute.
        assert stats["wall_seconds"] < stats["replayed_seconds"]
        cached_spans = [
            rec for rec in obs.TRACER.finished if rec["attrs"].get("cached")
        ]
        assert len(cached_spans) == 6
        assert obs.snapshot()["counters"]["exp.cells_cached"] == 6


class TestSwitchNeverChangesResults:
    """REPRO_OBS only toggles measurement: results stay bit-identical."""

    def _flow_rates(self):
        topo = build_hammingmesh(2, 2, 2, 2)
        sim = FlowSimulator(topo, max_paths=2)
        flows = random_permutation(topo.num_accelerators, seed=5)
        return sim.maxmin_rates(flows).flow_rates

    def _packet_rates(self):
        topo = build_hammingmesh(2, 2, 2, 2)
        flows = random_permutation(topo.num_accelerators, seed=5)
        backend = get_backend("packet", topo, max_paths=2, message_size=1 << 12)
        return backend.phase_rates(flows)

    def _cluster_run(self):
        config = ClusterSimConfig(
            x=6,
            y=6,
            num_jobs=40,
            seed=7,
            failures=FailureModel(mtbf_hours=200.0),
        )
        return ClusterSimulator(config).run()

    def _both_modes(self, fn):
        clear_route_tables()
        obs.reset()
        obs.disable()
        off = fn()
        clear_route_tables()
        obs.reset()
        obs.enable()
        try:
            on = fn()
        finally:
            obs.disable()
            obs.reset()
        return off, on

    def test_flow_solver_bit_identical(self):
        off, on = self._both_modes(self._flow_rates)
        assert np.array_equal(off, on)

    def test_packet_simulator_bit_identical(self):
        # The enabled path drives the engine in sampled slices; the slicing
        # must not change a single event outcome.
        off, on = self._both_modes(self._packet_rates)
        assert np.array_equal(off, on)

    def test_cluster_twin_bit_identical_and_spans_emitted(self):
        off, on = self._both_modes(self._cluster_run)
        assert off.fingerprint() == on.fingerprint()

    def test_cluster_spans_and_state_probe(self, enabled):
        clear_route_tables()
        run = self._cluster_run()
        summary = obs.span_summary()
        completed = sum(1 for job in run.jobs if job.finish_time is not None)
        assert summary["cluster.job"]["count"] == completed
        assert summary["cluster.job"]["clock"] == "sim"
        assert summary["cluster.job/running"]["count"] >= 1
        assert obs.snapshot()["counters"]["cluster.jobs_completed"] == completed
        assert len(obs.probe("cluster.state").samples) > 0
