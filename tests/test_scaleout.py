"""Scale-out path tests: sharded route tables, batched max-min, wave kernels.

The three legs of the scale-out contract (ISSUE 7):

* sharded/budgeted route tables are **bit-identical** to the eager build on
  every topology family, spill to disk under pressure, and clean up fully;
* :meth:`FlowSimulator.maxmin_rates_batch` returns bit-identical results to
  per-scenario solves, both called directly and through the experiment
  engine's batch grouping;
* the packet wave kernel registry resolves numpy/python (and numba only
  when importable), with exact cross-kernel parity.
"""

import glob
import os

import numpy as np
import pytest

import repro.obs as obs
from repro.core import build_hammingmesh
from repro.exp import Runner, run_sweep
from repro.exp.cells import maxmin_permutation_cell
from repro.exp.recording import MemoryProbe
from repro.sim import (
    FlowSimulator,
    RouteTable,
    available_wave_kernels,
    clear_route_tables,
    live_route_tables,
    parse_mem_budget,
    random_permutation,
    resolve_wave_kernel,
    route_table_for,
)
from repro.sim.wavekernel import wave_ends_numpy, wave_ends_python


def _has_numba() -> bool:
    try:
        import numba  # noqa: F401

        return True
    except ImportError:
        return False


# --------------------------------------------------------------------------
# Sharded route tables
# --------------------------------------------------------------------------
class TestShardedRouteTables:
    def test_paths_bit_identical_all_families(self, all_small_topologies):
        for name, topo in all_small_topologies.items():
            eager = RouteTable(topo, max_paths=4)
            sharded = RouteTable(topo, max_paths=4, sharded=True, shard_sources=8)
            assert not eager.is_sharded
            assert sharded.is_sharded
            accels = list(topo.accelerators)[:6]
            for src in accels:
                for dst in accels:
                    if src == dst:
                        continue
                    assert eager.paths(src, dst) == sharded.paths(src, dst), (
                        f"{name}: paths differ for pair ({src}, {dst})"
                    )

    def test_flow_rates_bit_identical_all_families(self, all_small_topologies):
        for name, topo in all_small_topologies.items():
            sim_eager = FlowSimulator(topo, max_paths=4, table=RouteTable(topo, max_paths=4))
            sim_sharded = FlowSimulator(
                topo,
                max_paths=4,
                table=RouteTable(topo, max_paths=4, sharded=True, shard_sources=8),
            )
            flows = random_permutation(topo.num_accelerators, seed=3)
            a = sim_eager.maxmin_rates(flows)
            b = sim_sharded.maxmin_rates(flows)
            assert np.array_equal(a.flow_rates, b.flow_rates), name
            assert np.array_equal(a.link_utilization, b.link_utilization), name
            assert a.bottleneck_link == b.bottleneck_link, name

    def test_budget_selects_sharded_and_bounds_residency(self, tmp_path):
        topo = build_hammingmesh(2, 2, 4, 4)
        budget = 16 << 10
        table = RouteTable(
            topo, max_paths=4, mem_budget=budget, shard_sources=8, spill_dir=str(tmp_path)
        )
        assert table.is_sharded  # dense index would not fit the budget
        flows = random_permutation(topo.num_accelerators, seed=0)
        FlowSimulator(topo, table=table).maxmin_rates(flows)
        assert table.estimated_csr_bytes() <= budget
        assert table.shards_built > 0

    def test_spill_files_dropped_on_clear(self, tmp_path):
        before_spill = obs.gauge("routing.spill_bytes").value
        topo = build_hammingmesh(2, 2, 4, 4)
        # A budget this tight forces evictions, which spill shards to disk.
        table = RouteTable(
            topo, max_paths=4, mem_budget=4096, shard_sources=4, spill_dir=str(tmp_path)
        )
        flows = random_permutation(topo.num_accelerators, seed=0)
        FlowSimulator(topo, table=table).maxmin_rates(flows)
        spilled = glob.glob(os.path.join(str(tmp_path), "repro-routes-*", "*.npz"))
        assert table.shards_evicted > 0
        assert spilled, "evictions under a tight budget must spill shards"
        assert obs.gauge("routing.spill_bytes").value > before_spill
        table.clear_route_caches()
        assert table.estimated_csr_bytes() == 0
        assert not glob.glob(os.path.join(str(tmp_path), "repro-routes-*", "*.npz"))
        assert obs.gauge("routing.spill_bytes").value == before_spill
        # Routes re-enumerate deterministically after the wipe.
        assert table.paths(0, 5) == RouteTable(topo, max_paths=4).paths(0, 5)

    def test_clear_route_tables_resets_live_tables(self, tmp_path):
        clear_route_tables()
        topo = build_hammingmesh(2, 2, 4, 4)
        os.environ["REPRO_ROUTE_SPILL_DIR"] = str(tmp_path)
        try:
            sim = FlowSimulator(topo, max_paths=4, mem_budget=4096)
            sim.maxmin_rates(random_permutation(topo.num_accelerators, seed=1))
            tables = [t for t in live_route_tables() if t.is_sharded]
            assert tables and any(t.estimated_csr_bytes() > 0 for t in tables)
            clear_route_tables()
            assert all(t.estimated_csr_bytes() == 0 for t in tables)
            assert not glob.glob(os.path.join(str(tmp_path), "repro-routes-*", "*.npz"))
        finally:
            del os.environ["REPRO_ROUTE_SPILL_DIR"]

    def test_parse_mem_budget(self):
        assert parse_mem_budget(None) is None
        assert parse_mem_budget("") is None
        assert parse_mem_budget(4096) == 4096
        assert parse_mem_budget("256M") == 256 << 20
        assert parse_mem_budget("4G") == 4 << 30
        with pytest.raises(ValueError):
            parse_mem_budget("4Q")


# --------------------------------------------------------------------------
# Batched max-min
# --------------------------------------------------------------------------
class TestMaxminBatch:
    def test_batch_bit_identical_fig12_grid(self, all_small_topologies):
        for name, topo in all_small_topologies.items():
            sim = FlowSimulator(topo, max_paths=4)
            flow_sets = [
                random_permutation(topo.num_accelerators, seed=7 + p) for p in range(4)
            ]
            solo = [sim.maxmin_rates(flows) for flows in flow_sets]
            batch = sim.maxmin_rates_batch(flow_sets)
            assert len(batch) == len(solo)
            for a, b in zip(solo, batch):
                assert np.array_equal(a.flow_rates, b.flow_rates), name
                assert np.array_equal(a.link_utilization, b.link_utilization), name
                assert a.bottleneck_link == b.bottleneck_link, name

    def test_batch_handles_empty_and_mixed_scenarios(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        perm = random_permutation(hx2mesh_4x4.num_accelerators, seed=11)
        flow_sets = [perm, [], perm[: len(perm) // 2]]
        solo = [sim.maxmin_rates(flows) for flows in flow_sets]
        batch = sim.maxmin_rates_batch(flow_sets)
        for a, b in zip(solo, batch):
            assert np.array_equal(a.flow_rates, b.flow_rates)
            assert np.array_equal(a.link_utilization, b.link_utilization)
        assert sim.maxmin_rates_batch([]) == []

    def test_batch_observes_instruments(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        flow_sets = [
            random_permutation(hx2mesh_4x4.num_accelerators, seed=p) for p in range(3)
        ]
        solves_before = obs.counter("flowsim.maxmin_solves").value
        hist = obs.histogram("flowsim.batch_size")
        count_before = hist.count
        was_enabled = obs.is_enabled()
        obs.enable()
        try:
            sim.maxmin_rates_batch(flow_sets)
        finally:
            if not was_enabled:
                obs.disable()
        assert obs.counter("flowsim.maxmin_solves").value == solves_before + 3
        assert hist.count == count_before + 1
        assert hist.max >= 3


# --------------------------------------------------------------------------
# Experiment-engine batching (the scale-out sweep path)
# --------------------------------------------------------------------------
class TestEngineBatching:
    def test_runner_batches_chunk_and_matches_solo(self):
        clear_route_tables()
        params = dict(a=2, b=2, x=2, y=2, max_paths=4)
        batched_before = obs.counter("exp.cells_batched").value
        run = run_sweep(
            "scaleout_permutation",
            runner=Runner(workers=1, cache=False),
            num_permutations=3,
            mem_budget=None,
            **params,
        )
        assert obs.counter("exp.cells_batched").value == batched_before + 3
        solo = [maxmin_permutation_cell(seed=s, **params) for s in range(3)]
        assert run.payload["permutations"] == solo
        assert run.payload["num_permutations"] == 3
        fractions = [p["mean_fraction"] for p in solo]
        assert run.payload["mean_fraction"] == pytest.approx(np.mean(fractions))
        # Process-parallel execution produces the same bits as the batched
        # in-process chunk and the solo calls.
        parallel = run_sweep(
            "scaleout_permutation",
            runner=Runner(workers=2, cache=False),
            num_permutations=3,
            mem_budget=None,
            **params,
        )
        assert parallel.payload["permutations"] == solo
        clear_route_tables()

    def test_sweep_reports_peak_memory(self):
        run = run_sweep(
            "scaleout_permutation",
            runner=Runner(workers=1, cache=False),
            a=2,
            b=2,
            x=2,
            y=2,
            max_paths=4,
            num_permutations=2,
            mem_budget=None,
        )
        stats = run.report.stats()
        assert stats["peak_rss_bytes"] is not None
        assert stats["peak_rss_bytes"] > 0
        clear_route_tables()

    def test_memory_probe_tracks_rss(self):
        with MemoryProbe() as probe:
            ballast = np.ones(1 << 16)
        assert probe.peak_rss_bytes > 0
        assert probe.rss_growth_bytes >= 0
        assert ballast.shape == (1 << 16,)


# --------------------------------------------------------------------------
# Wave kernels
# --------------------------------------------------------------------------
class TestWaveKernels:
    def test_registry_always_has_portable_kernels(self):
        kernels = available_wave_kernels()
        assert kernels["numpy"] is wave_ends_numpy
        assert kernels["python"] is wave_ends_python
        assert ("numba" in kernels) == _has_numba()

    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_PACKET_KERNEL", raising=False)
        assert resolve_wave_kernel() is wave_ends_numpy
        monkeypatch.setenv("REPRO_PACKET_KERNEL", "python")
        assert resolve_wave_kernel() is wave_ends_python
        # An explicit name wins over the environment.
        assert resolve_wave_kernel("numpy") is wave_ends_numpy
        with pytest.raises(ValueError):
            resolve_wave_kernel("fortran")

    @pytest.mark.skipif(_has_numba(), reason="numba importable: request succeeds")
    def test_numba_request_fails_loudly_when_missing(self):
        with pytest.raises(RuntimeError, match="numba"):
            resolve_wave_kernel("numba")

    def test_kernel_parity_exact(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            k = int(rng.integers(1, 60))
            counts = rng.integers(1, 5, size=int(rng.integers(1, 12)))
            counts = counts[: np.searchsorted(np.cumsum(counts), k) + 1]
            total = int(counts.sum())
            starts = np.concatenate(([0], np.cumsum(counts[:-1]))).astype(np.int64)
            base = rng.random(total)
            sser = rng.random(total)
            out_np = wave_ends_numpy(base, sser, starts, counts.astype(np.int64))
            out_py = wave_ends_python(base, sser, starts, counts.astype(np.int64))
            assert np.array_equal(out_np, out_py)
