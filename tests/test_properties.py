"""Tests for diameter, bisection and census analysis (Section III-A/B)."""

import pytest

from repro.core import build_hammingmesh
from repro.core.params import hx2mesh, hx4mesh, hx1mesh
from repro.topology import (
    CableClass,
    analytic_diameter,
    bfs_diameter,
    build_fat_tree,
    cable_census,
    relative_bisection_bandwidth,
    switch_count,
)
from repro.topology.properties import fat_tree_global_stage


class TestDiameterFormulas:
    """The analytic diameters must reproduce the Table II column."""

    @pytest.mark.parametrize(
        "builder_kwargs,expected",
        [
            (dict(a=2, b=2, x=16, y=16), 4),    # small Hx2Mesh
            (dict(a=4, b=4, x=8, y=8), 8),      # small Hx4Mesh
            (dict(a=2, b=2, x=64, y=64), 8),    # large Hx2Mesh
            (dict(a=4, b=4, x=32, y=32), 8),    # large Hx4Mesh
            (dict(a=1, b=1, x=32, y=32), 4),    # small Hx1Mesh / HyperX
        ],
    )
    def test_hammingmesh_diameters(self, builder_kwargs, expected):
        topo = build_hammingmesh(**builder_kwargs)
        assert analytic_diameter(topo) == expected

    def test_fat_tree_diameters(self):
        assert analytic_diameter(build_fat_tree(64)) == 2
        assert analytic_diameter(build_fat_tree(1024)) == 4
        assert analytic_diameter(build_fat_tree(4096)) == 6

    def test_torus_diameter(self, torus_4x4_boards):
        assert analytic_diameter(torus_4x4_boards) == 8
        assert bfs_diameter(
            torus_4x4_boards, sources=list(torus_4x4_boards.accelerators)[:4]
        ) == 8

    def test_dragonfly_diameter(self, dragonfly_small_fixture):
        # h=2 < groups-1=3, so the worst case needs local hops on both sides.
        assert analytic_diameter(dragonfly_small_fixture) == 5

    def test_hyperx_diameter(self, hyperx_4x4):
        assert analytic_diameter(hyperx_4x4) == 4
        assert bfs_diameter(hyperx_4x4, sources=list(hyperx_4x4.accelerators)[:4]) == 4

    def test_bfs_matches_analytic_on_small_hxmesh(self, hx2mesh_4x4):
        assert bfs_diameter(hx2mesh_4x4) == analytic_diameter(hx2mesh_4x4)

    def test_global_stage_helper(self):
        assert fat_tree_global_stage(32, 64) == 2     # single switch
        assert fat_tree_global_stage(128, 64) == 4    # two-level tree
        with pytest.raises(Exception):
            fat_tree_global_stage(0, 64)


class TestBisection:
    def test_fat_tree_bisection_equals_taper(self):
        assert relative_bisection_bandwidth(build_fat_tree(64)) == 1.0
        assert relative_bisection_bandwidth(build_fat_tree(128, taper=0.25)) == 0.25

    def test_hammingmesh_bisection_is_half_board_width(self, hx2mesh_4x4):
        assert relative_bisection_bandwidth(hx2mesh_4x4) == pytest.approx(0.25)
        hx4 = build_hammingmesh(4, 4, 2, 2)
        assert relative_bisection_bandwidth(hx4) == pytest.approx(0.125)

    def test_torus_bisection(self, torus_4x4_boards):
        value = relative_bisection_bandwidth(torus_4x4_boards)
        assert 0.0 < value <= 0.5

    def test_dragonfly_and_hyperx_full_bisection(self, dragonfly_small_fixture, hyperx_4x4):
        assert relative_bisection_bandwidth(dragonfly_small_fixture) == 1.0
        assert relative_bisection_bandwidth(hyperx_4x4) == 1.0


class TestCensus:
    def test_hxmesh_cable_census(self, hx2mesh_4x4):
        census = cable_census(hx2mesh_4x4)
        # 4 global rows x 2 on-board rows x 8 access cables each (DAC), same
        # for columns but AoC.
        assert census[CableClass.DAC] == 64
        assert census[CableClass.AOC] == 64
        assert census[CableClass.PCB] == 0  # PCB traces are not counted as cables

    def test_switch_count(self, hx2mesh_4x4, fat_tree_64):
        assert switch_count(hx2mesh_4x4) == 16
        assert switch_count(fat_tree_64) == 1

    def test_torus_has_only_dac(self, torus_4x4_boards):
        census = cable_census(torus_4x4_boards)
        assert census[CableClass.AOC] == 0
        assert census[CableClass.DAC] > 0
