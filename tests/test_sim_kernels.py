"""Parity and engine tests for the vectorized simulator kernels.

The vectorized packet core (:mod:`repro.sim.network`) must reproduce the
reference implementation (:mod:`repro.sim.reference`) *bit for bit* —
identical per-message completion times, link busy times, finish time, and
event counts — on every topology family; the incremental max-min solver
must match the full-rescan reference to 1e-9.  These tests are the oracle
the tentpole optimisation is held to.
"""

import numpy as np
import pytest

from repro.sim import (
    EventEngine,
    Flow,
    FlowSimulator,
    PacketNetwork,
    PacketSimConfig,
    ReferencePacketNetwork,
    get_backend,
    random_permutation,
    reference_maxmin_rates,
    ring_neighbor_flows,
)
from repro.topology import Topology


# --------------------------------------------------------------------- engine
class TestTypedRecords:
    def test_records_dispatch_in_batches(self):
        engine = EventEngine()
        seen = []
        engine.set_record_handler(lambda t, recs: seen.append((t, [r[2:] for r in recs])))
        engine.schedule_record(2.0, 1, 10)
        engine.schedule_record(1.0, 0, 7, 8, 9.5)
        engine.schedule_record(2.0, 2, 11)
        engine.run()
        assert seen == [
            (1.0, [(0, 7, 8, 9.5)]),
            (2.0, [(1, 10, 0, 0.0), (2, 11, 0, 0.0)]),
        ]
        assert engine.processed_events == 3
        assert engine.pending_events == 0

    def test_records_interleave_with_closures(self):
        engine = EventEngine()
        order = []
        engine.set_record_handler(
            lambda t, recs: order.extend(("rec", r[3]) for r in recs)
        )
        engine.schedule(1.0, lambda: order.append(("closure", "a")))  # seq 0
        engine.schedule_record(1.0, 0, "b")                           # seq 1
        engine.schedule(1.0, lambda: order.append(("closure", "c")))  # seq 2
        engine.schedule_record(1.0, 0, "d")                           # seq 3
        engine.schedule_record(0.5, 0, "early")
        engine.run()
        # Global (time, sequence) order: the closure barrier at seq 2 splits
        # the records at t=1.0 into two batches.
        assert order == [
            ("rec", "early"),
            ("closure", "a"),
            ("rec", "b"),
            ("closure", "c"),
            ("rec", "d"),
        ]

    def test_handler_can_schedule_followups(self):
        engine = EventEngine()
        times = []

        def handler(t, recs):
            times.append(t)
            for rec in recs:
                if rec[3] < 3:
                    engine.schedule_record(t + 1.0, 0, rec[3] + 1)

        engine.set_record_handler(handler)
        engine.schedule_record(0.0, 0, 0)
        finish = engine.run()
        assert times == [0.0, 1.0, 2.0, 3.0]
        assert finish == 3.0

    def test_peek_and_pending_cover_records(self):
        engine = EventEngine()
        engine.schedule_record(2.0, 0)
        engine.schedule(3.0, lambda: None)
        assert engine.peek() == 2.0
        assert engine.pending_events == 2

    def test_cannot_schedule_record_in_the_past(self):
        engine = EventEngine()
        engine.set_record_handler(lambda t, recs: None)
        engine.schedule_record(1.0, 0)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_record(0.5, 0)

    def test_run_without_handler_raises(self):
        engine = EventEngine()
        engine.schedule_record(1.0, 0)
        with pytest.raises(RuntimeError):
            engine.run()

    def test_reset_clears_records(self):
        engine = EventEngine()
        engine.schedule_record(1.0, 0)
        engine.reset()
        assert engine.pending_events == 0
        assert engine.peek() is None

    def test_max_events_splits_a_batch(self):
        engine = EventEngine()
        seen = []
        engine.set_record_handler(lambda t, recs: seen.extend(r[3] for r in recs))
        for i in range(5):
            engine.schedule_record(1.0, 0, i)
        engine.run(max_events=2)
        assert seen == [0, 1]
        assert engine.pending_events == 3
        engine.run()
        assert seen == [0, 1, 2, 3, 4]


# ------------------------------------------------------------- packet parity
def _completion_times(result):
    return np.array([m.completion_time for m in result.messages], dtype=float)


def _run_pair(topo, load, config=None):
    config = config or PacketSimConfig(max_paths=4)
    ref = ReferencePacketNetwork(topo, config=config)
    load(ref)
    ref_result = ref.run()
    vec = PacketNetwork(topo, config=config)
    load(vec)
    vec_result = vec.run()
    return (ref, ref_result), (vec, vec_result)


class TestPacketParityAllFamilies:
    def test_permutation_schedules_bit_identical(self, all_small_topologies):
        for name, topo in all_small_topologies.items():
            flows = random_permutation(topo.num_accelerators, seed=7)
            (ref, rr), (vec, rv) = _run_pair(
                topo, lambda net: net.send_flows(flows, 1 << 16)
            )
            assert rr.all_finished and rv.all_finished, name
            assert np.array_equal(_completion_times(rr), _completion_times(rv)), name
            assert np.array_equal(rr.link_busy_time, rv.link_busy_time), name
            assert rr.finish_time == rv.finish_time, name
            assert ref.engine.processed_events == vec.engine.processed_events, name

    def test_fractional_demands_bit_identical(self, hx2mesh_4x4):
        flows = [Flow(i, (i + 5) % 16, demand=1.0 + 0.3 * i) for i in range(16)]
        (ref, rr), (vec, rv) = _run_pair(
            hx2mesh_4x4, lambda net: net.send_flows(flows, 10000.5)
        )
        assert rr.all_finished and rv.all_finished
        assert np.array_equal(_completion_times(rr), _completion_times(rv))
        assert np.array_equal(rr.link_busy_time, rv.link_busy_time)

    def test_staggered_starts_bit_identical(self, fat_tree_64):
        def load(net):
            for i in range(24):
                net.send(i, (i + 7) % 64, 1 << 15, start_time=1e-7 * (i % 5))

        (ref, rr), (vec, rv) = _run_pair(fat_tree_64, load)
        assert np.array_equal(_completion_times(rr), _completion_times(rv))
        assert rr.finish_time == rv.finish_time

    def test_packet_vs_flow_steady_state_all_families(self, all_small_topologies):
        """Steady-state packet throughput tracks the max-min flow rates."""
        for name, topo in all_small_topologies.items():
            flows = random_permutation(topo.num_accelerators, seed=3)
            net = PacketNetwork(topo, config=PacketSimConfig(max_paths=4))
            net.send_flows(flows, 1 << 17)
            result = net.run()
            assert result.all_finished, name
            packet_mean = result.message_bandwidths().mean() / 50e9
            flow_mean = FlowSimulator(topo, max_paths=4).maxmin_rates(flows).flow_rates.mean()
            ratio = packet_mean / flow_mean
            assert 0.5 < ratio < 1.5, f"{name}: packet/flow ratio {ratio:.2f}"

    def test_forced_wave_path_bit_identical(self, all_small_topologies, monkeypatch):
        """The NumPy wave pass must match the scalar kernel bit for bit.

        At the shipped threshold (4096) no in-repo workload reaches the
        vectorized pass, so force it low and pin it to the reference on
        every family — including fractional payload factors.
        """
        import repro.sim.network as netmod

        monkeypatch.setattr(netmod, "_WAVE_THRESHOLD", 2)
        for name, topo in all_small_topologies.items():
            flows = random_permutation(topo.num_accelerators, seed=11)
            (ref, rr), (vec, rv) = _run_pair(
                topo, lambda net: net.send_flows(flows, 50000.25)
            )
            assert np.array_equal(_completion_times(rr), _completion_times(rv)), name
            assert np.array_equal(rr.link_busy_time, rv.link_busy_time), name
            assert ref.engine.processed_events == vec.engine.processed_events, name

    def test_run_with_closure_events_mixed_in(self, fat_tree_64):
        """User closures on the packet engine still interleave correctly."""
        net = PacketNetwork(fat_tree_64)
        msg = net.send(0, 1, 1 << 14)
        fired = []
        net.engine.schedule(1e-9, lambda: fired.append(net.engine.now))
        result = net.run()
        assert fired == [1e-9]
        assert msg.finished and result.all_finished

    def test_run_until_and_resume(self, fat_tree_64):
        net = PacketNetwork(fat_tree_64)
        net.send(0, 1, 1 << 16)
        partial = net.run(until=1e-7)
        assert partial.finish_time == 1e-7
        assert not partial.all_finished
        assert net.engine.pending_events > 0
        full = net.run()
        assert full.all_finished
        # identical to an uninterrupted run
        solo = PacketNetwork(fat_tree_64)
        solo.send(0, 1, 1 << 16)
        assert solo.run().finish_time == full.finish_time

    def test_reference_backend_knob(self, hx2mesh_4x4):
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=1)
        fast = get_backend("packet", hx2mesh_4x4, max_paths=4)
        slow = get_backend("packet", hx2mesh_4x4, max_paths=4, impl="reference")
        np.testing.assert_array_equal(fast.phase_rates(flows), slow.phase_rates(flows))
        with pytest.raises(ValueError):
            get_backend("packet", hx2mesh_4x4, impl="bogus")


class TestPayloadExactness:
    def test_fractional_message_delivers_exact_bytes(self, fat_tree_64):
        net = PacketNetwork(fat_tree_64)
        msg = net.send(0, 1, 100000.5)
        net.run()
        assert msg.finished
        assert msg.packets_total == int(np.ceil(100000.5 / 8192))
        state = net.packet_state()
        assert state["size"].sum() == 100000.5
        # full packets carry packet_size; only the last carries the remainder
        assert (state["size"][:-1] == 8192).all()

    def test_integer_message_split_unchanged(self, fat_tree_64):
        net = PacketNetwork(fat_tree_64)
        net.send(0, 1, 3 * 8192 + 100)
        net.run()
        state = net.packet_state()
        assert state["size"].tolist() == [8192.0, 8192.0, 8192.0, 100.0]

    def test_packet_state_is_struct_of_arrays(self, hx2mesh_4x4):
        net = PacketNetwork(hx2mesh_4x4, config=PacketSimConfig(max_paths=4))
        flows = random_permutation(hx2mesh_4x4.num_accelerators, seed=5)
        net.send_flows(flows, 1 << 14)
        net.run(max_events=200)
        state = net.packet_state()
        n = len(state["message"])
        assert n > 0
        for key in ("message", "hop", "path_start", "path_end", "path_links"):
            assert state[key].dtype == np.int64
        assert state["size"].dtype == np.float64
        # CSR invariants: ranges are within the flat array and hops within range
        assert (state["path_end"] > state["path_start"]).all()
        assert state["path_end"].max() <= len(state["path_links"])
        assert (state["hop"] >= 1).all()
        assert (state["hop"] <= state["path_end"] - state["path_start"]).all()
        net.run()
        done = net.packet_state()
        assert (done["hop"] == done["path_end"] - done["path_start"]).all()

    def test_link_utilization_is_busy_fraction(self, fat_tree_64):
        net = PacketNetwork(fat_tree_64)
        net.send(0, 9, 1 << 20)
        result = net.run()
        util = result.link_utilization()
        expected = result.link_busy_time / result.finish_time
        np.testing.assert_allclose(util, expected)


# ------------------------------------------------------------ max-min parity
def _multi_bottleneck_topology():
    """Two shared bottlenecks of different capacity plus a private fat link.

    Flows overlap so progressive filling freezes them across several rounds
    — the pattern the incremental solver must replay exactly.
    """
    topo = Topology("multi-bottleneck")
    a, b, c, d = (topo.add_accelerator() for _ in range(4))
    s1 = topo.add_switch()
    s2 = topo.add_switch()
    topo.add_link(a, s1, capacity=4.0)
    topo.add_link(b, s1, capacity=4.0)
    topo.add_link(s1, s2, capacity=1.0)   # tight shared bottleneck
    topo.add_link(s2, c, capacity=2.0)    # looser second bottleneck
    topo.add_link(s2, d, capacity=4.0)
    topo.meta["injection_capacity"] = 4.0
    return topo


class TestMaxMinIncremental:
    def test_multi_bottleneck_matches_reference(self):
        topo = _multi_bottleneck_topology()
        sim = FlowSimulator(topo)
        flows = [Flow(0, 2), Flow(1, 2), Flow(0, 3), Flow(1, 3, demand=2.0)]
        inc = sim.maxmin_rates(flows)
        ref = reference_maxmin_rates(sim, flows)
        np.testing.assert_allclose(inc.flow_rates, ref.flow_rates, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            inc.link_utilization, ref.link_utilization, rtol=1e-9, atol=1e-9
        )
        assert inc.bottleneck_link == ref.bottleneck_link
        # the tight shared link must saturate
        assert inc.link_utilization.max() == pytest.approx(1.0, abs=1e-6)

    def test_permutations_match_reference_all_families(self, all_small_topologies):
        for name, topo in all_small_topologies.items():
            sim = FlowSimulator(topo, max_paths=8)
            for seed in (0, 1, 2):
                flows = random_permutation(topo.num_accelerators, seed=seed)
                inc = sim.maxmin_rates(flows)
                ref = reference_maxmin_rates(sim, flows)
                np.testing.assert_allclose(
                    inc.flow_rates, ref.flow_rates, rtol=1e-9, atol=1e-9,
                    err_msg=f"{name} seed={seed}",
                )

    def test_ring_and_demand_weighting_match_reference(self, hx2mesh_4x4):
        sim = FlowSimulator(hx2mesh_4x4, max_paths=4)
        ring = ring_neighbor_flows(list(range(hx2mesh_4x4.num_accelerators)))
        weighted = [
            Flow(f.src, f.dst, demand=1.0 + (i % 3)) for i, f in enumerate(ring)
        ]
        for flows in (ring, weighted):
            inc = sim.maxmin_rates(flows)
            ref = reference_maxmin_rates(sim, flows)
            np.testing.assert_allclose(inc.flow_rates, ref.flow_rates, rtol=1e-9, atol=1e-9)
