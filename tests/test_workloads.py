"""Tests for the DNN workload models and the overlap iteration model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    PORT_BYTES_PER_S,
    CommOp,
    NetworkProfile,
    ParallelismConfig,
    communication_time,
    get_workload,
    iteration_time,
    WORKLOADS,
)
from repro.workloads.parallelism import (
    data_parallel_volume,
    operator_volume,
    pipeline_volume,
)


def make_profile(family="fattree", a2a=1.0, ar=1.0, diameter=4):
    return NetworkProfile.from_measurements(
        family, family, alltoall_fraction=a2a, allreduce_fraction=ar, diameter=diameter
    )


class TestParallelism:
    def test_config_counts(self):
        cfg = ParallelismConfig(data=4, pipeline=3, operator=2)
        assert cfg.num_accelerators == 24
        assert cfg.logical_shape() == (4, 3, 2)
        assert ParallelismConfig().logical_shape() == (1,)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ParallelismConfig(data=0)

    def test_volume_formulas(self):
        cfg = ParallelismConfig(data=8, pipeline=4, operator=2)
        assert data_parallel_volume(4, 1e6, cfg) == pytest.approx(4e6 / 8)
        assert pipeline_volume(4, 1e5, 64, cfg) == pytest.approx(64 * 4 * 1e5 / 64)
        assert operator_volume(2, 100) == 200


class TestCommOp:
    def test_validation(self):
        with pytest.raises(ValueError):
            CommOp(kind="bogus", volume=1, group=2)
        with pytest.raises(ValueError):
            CommOp(kind="allreduce", volume=1, group=2, overlap=1.5)
        with pytest.raises(ValueError):
            CommOp(kind="allreduce", volume=-1, group=2)

    def test_zero_volume_is_free(self):
        profile = make_profile()
        assert communication_time(CommOp("allreduce", 0, 16), profile) == 0.0
        assert communication_time(CommOp("p2p", 100, 1), profile) == 0.0


class TestCommunicationTime:
    def test_allreduce_respects_busbw(self):
        profile = make_profile(ar=1.0)
        op = CommOp("allreduce", volume=1e9, group=1024)
        t = communication_time(op, profile)
        assert t >= 1e9 / profile.allreduce_busbw

    def test_p2p_faster_on_fat_tree_than_hxmesh(self):
        ft = make_profile("fattree")
        hx = make_profile("hammingmesh")
        op = CommOp("p2p", volume=1e9, group=2)
        assert communication_time(op, ft) < communication_time(op, hx)

    def test_alltoall_scales_with_measured_fraction(self):
        good = make_profile(a2a=1.0)
        poor = make_profile(a2a=0.1)
        op = CommOp("alltoall", volume=1e9, group=64)
        assert communication_time(op, poor) > 5 * communication_time(op, good)

    def test_latency_dominates_small_collectives(self):
        profile = make_profile()
        op = CommOp("alltoall", volume=1e3, group=128)
        t = communication_time(op, profile)
        assert t >= 127 * profile.alpha

    def test_torus_contention_slows_p2p(self):
        torus = make_profile("torus")
        hx = make_profile("hammingmesh")
        op = CommOp("p2p", volume=1e9, group=2)
        assert communication_time(op, torus) > communication_time(op, hx)


class TestIterationModel:
    def test_fully_overlapped_communication_is_free(self):
        profile = make_profile()
        ops = [CommOp("allreduce", volume=1e6, group=64, overlap=1.0)]
        assert iteration_time(1.0, ops, profile) == pytest.approx(1.0)

    def test_exposed_communication_adds_up(self):
        profile = make_profile()
        ops = [CommOp("p2p", volume=200e9, group=2, overlap=0.0)]  # 1 s at 200 GB/s
        t = iteration_time(1.0, ops, profile)
        assert t == pytest.approx(2.0, rel=0.01)

    def test_overlap_spills_when_exceeding_compute(self):
        profile = make_profile()
        ops = [CommOp("p2p", volume=400e9, group=2, overlap=1.0)]  # 2 s hideable
        t = iteration_time(1.0, ops, profile)
        assert t == pytest.approx(2.0, rel=0.01)

    @given(
        compute=st.floats(1e-3, 1.0),
        volume=st.floats(0, 1e9),
        overlap=st.floats(0, 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_iteration_at_least_compute(self, compute, volume, overlap):
        profile = make_profile()
        ops = [CommOp("allreduce", volume=volume, group=32, overlap=overlap)]
        t = iteration_time(compute, ops, profile)
        assert t >= compute - 1e-12
        # less overlap can never make the iteration faster
        ops_no = [CommOp("allreduce", volume=volume, group=32, overlap=0.0)]
        assert iteration_time(compute, ops_no, profile) >= t - 1e-12


class TestWorkloads:
    def test_registry_contains_all_models(self):
        for name in ("resnet152", "cosmoflow", "gpt3", "gpt3_moe", "dlrm"):
            assert name in WORKLOADS
        with pytest.raises(ValueError):
            get_workload("unknown-model")

    def test_resnet_overhead_is_small_everywhere(self):
        wl = get_workload("resnet152")
        for family in ("fattree", "hammingmesh", "torus"):
            overhead = wl.communication_overhead(make_profile(family))
            assert overhead < 0.05

    def test_resnet_scaling_with_d(self):
        small = get_workload("resnet152", data_parallelism=256)
        large = get_workload("resnet152", data_parallelism=1024)
        assert small.compute_time > large.compute_time
        with pytest.raises(ValueError):
            get_workload("resnet152", data_parallelism=1)

    def test_gpt3_fat_tree_matches_calibration(self):
        wl = get_workload("gpt3")
        t = wl.iteration_time(make_profile("fattree"))
        assert t == pytest.approx(wl.paper_reference["nonblocking fat tree"], rel=0.05)

    def test_gpt3_topology_ordering(self):
        wl = get_workload("gpt3")
        ft = wl.iteration_time(make_profile("fattree"))
        hx = wl.iteration_time(make_profile("hammingmesh", a2a=0.25))
        torus = wl.iteration_time(make_profile("torus", a2a=0.06, diameter=32))
        assert ft < hx < torus

    def test_moe_sensitive_to_alltoall_bandwidth(self):
        wl = get_workload("gpt3_moe")
        good = wl.iteration_time(make_profile("fattree", a2a=1.0))
        poor = wl.iteration_time(make_profile("hammingmesh", a2a=0.1))
        assert poor > good

    def test_dlrm_latency_bound(self):
        wl = get_workload("dlrm")
        t = wl.iteration_time(make_profile("fattree"))
        # iteration larger than compute but within a few milliseconds
        assert wl.compute_time < t < 5e-3
        assert wl.num_accelerators == 128

    def test_cosmoflow_overhead_shape(self):
        wl = get_workload("cosmoflow")
        ft = wl.communication_overhead(make_profile("fattree"))
        torus = wl.communication_overhead(make_profile("torus", a2a=0.06))
        assert ft <= torus
        assert torus < 0.25

    def test_total_comm_volume_positive(self):
        for name in WORKLOADS:
            wl = get_workload(name)
            assert wl.total_comm_volume() > 0
            assert wl.num_accelerators >= 2
