"""Tests for the fault-injection layer (repro.sim.faults) and its backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_hammingmesh
from repro.sim import (
    FaultEventSolver,
    FaultSet,
    FlowBackend,
    FlowSimulator,
    PacketBackend,
    PacketNetwork,
    PacketSimConfig,
    degraded_route_table,
    link_fault_schedule,
    random_permutation,
    route_table_for,
    sample_link_faults,
    sample_switch_faults,
    split_connected,
)
from repro.sim.faults import DegradedPathProvider, cable_partner, fault_candidate_links
from repro.topology.base import TopologyError


class TestFaultSet:
    def test_empty_singleton(self):
        assert FaultSet.empty() is FaultSet.empty()
        assert FaultSet.empty().is_empty
        assert not FaultSet(dead_links=frozenset([0])).is_empty

    def test_from_links_kills_both_directions(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        li = fault_candidate_links(topo)[0]
        fs = FaultSet.from_links(topo, [li])
        assert li in fs.dead_links
        assert cable_partner(topo, li) in fs.dead_links
        assert len(fs.dead_links) == 2

    def test_from_nodes_kills_incident_links(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        node = topo.accelerators[0]
        fs = FaultSet.from_nodes(topo, [node])
        assert node in fs.dead_nodes
        assert set(topo.out_links(node)) <= fs.dead_links
        assert set(topo.in_links(node)) <= fs.dead_links

    def test_from_boards_requires_hammingmesh(self, torus_4x4_boards):
        with pytest.raises(TopologyError):
            FaultSet.from_boards(torus_4x4_boards, [(0, 0)])

    def test_from_boards_kills_all_board_accelerators(self):
        topo = build_hammingmesh(2, 2, 2, 2)
        fs = FaultSet.from_boards(topo, [(0, 1)])
        coord_of = topo.meta["coord_of"]
        expected = {acc for acc, c in coord_of.items() if tuple(c[:2]) == (0, 1)}
        assert fs.dead_nodes == frozenset(expected)
        with pytest.raises(ValueError):
            FaultSet.from_boards(topo, [(9, 9)])

    def test_union_difference_roundtrip(self, hx2mesh_4x4):
        a = sample_link_faults(hx2mesh_4x4, 2, seed=0)
        b = sample_link_faults(hx2mesh_4x4, 4, seed=0)
        assert a.union(b).cache_key() == b.cache_key()  # nested prefix
        assert b.difference(a).union(a).cache_key() == b.cache_key()
        assert a.union(FaultSet.empty()) is a

    def test_out_of_range_rejected(self, hx2mesh_4x4):
        with pytest.raises(ValueError):
            FaultSet.from_links(hx2mesh_4x4, [hx2mesh_4x4.num_links])
        with pytest.raises(ValueError):
            FaultSet.from_nodes(hx2mesh_4x4, [-1])


class TestSamplers:
    def test_samples_nested_and_deterministic(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        for k in range(4):
            small = sample_link_faults(topo, k, seed=3)
            large = sample_link_faults(topo, k + 1, seed=3)
            assert small.dead_links < large.dead_links
        assert (
            sample_link_faults(topo, 3, seed=3).cache_key()
            == sample_link_faults(topo, 3, seed=3).cache_key()
        )

    def test_seed_changes_the_sample(self, hx2mesh_4x4):
        a = fault_candidate_links(hx2mesh_4x4, seed=0)
        b = fault_candidate_links(hx2mesh_4x4, seed=1)
        assert sorted(a) == sorted(b)  # same eligible cables
        assert a != b  # different order

    def test_access_links_excluded_on_switched_fabrics(self, fat_tree_64):
        topo = fat_tree_64
        for li in fault_candidate_links(topo):
            link = topo.link(li)
            assert topo.is_accelerator(link.src) == topo.is_accelerator(link.dst)

    def test_oversized_request_rejected(self, hx2mesh_4x4):
        eligible = len(fault_candidate_links(hx2mesh_4x4))
        with pytest.raises(ValueError):
            sample_link_faults(hx2mesh_4x4, eligible + 1)

    def test_schedule_is_cumulative(self, hx2mesh_4x4):
        schedule = link_fault_schedule(hx2mesh_4x4, 4, seed=1)
        assert len(schedule) == 5
        assert schedule[0].is_empty
        for prev, cur in zip(schedule, schedule[1:]):
            assert prev.dead_links < cur.dead_links
            assert len(cur.dead_links) - len(prev.dead_links) == 2

    def test_switch_fault_sampler(self, dragonfly_small_fixture):
        topo = dragonfly_small_fixture
        fs = sample_switch_faults(topo, 2, seed=0)
        assert len(fs.dead_nodes) == 2
        assert all(not topo.is_accelerator(n) for n in fs.dead_nodes)
    def test_switch_faults_need_switches(self, torus_4x4_boards):
        if torus_4x4_boards.num_switches:
            pytest.skip("torus fixture unexpectedly has switches")
        with pytest.raises(TopologyError):
            sample_switch_faults(torus_4x4_boards, 1)


class TestEmptyFaultBitIdentity:
    """An empty FaultSet must be the fault-free path, not merely close to it."""

    def test_empty_faults_share_the_fault_free_table(self, all_small_topologies):
        for name, topo in all_small_topologies.items():
            table = degraded_route_table(topo, FaultSet.empty(), max_paths=4)
            assert table is route_table_for(topo, max_paths=4), name

    def test_flow_backend_rates_identical_on_all_families(self, all_small_topologies):
        for name, topo in all_small_topologies.items():
            flows = random_permutation(topo.num_accelerators, seed=7)
            plain = FlowBackend(topo, max_paths=4).phase_rates(flows)
            masked = FlowBackend(topo, max_paths=4, faults=FaultSet.empty()).phase_rates(flows)
            assert np.array_equal(plain, masked), name

    def test_packet_network_identical_with_empty_faults(self, hx2mesh_4x4):
        def run(faults):
            net = PacketNetwork(
                hx2mesh_4x4, config=PacketSimConfig(max_paths=2), faults=faults
            )
            msgs = [net.send(i, (i + 5) % len(net.ranks), 4096) for i in range(8)]
            result = net.run()
            return result.finish_time, [m.completion_time for m in msgs]

        assert run(None) == run(FaultSet.empty())


class TestDegradedRouting:
    def test_pairs_reroute_over_survivors(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        faults = sample_link_faults(topo, 4, seed=1)
        backend = FlowBackend(topo, max_paths=4, faults=faults)
        rates = backend.phase_rates(random_permutation(topo.num_accelerators, seed=0))
        assert backend.disconnected_pairs == 0
        assert (rates > 0).all()

    def test_dead_endpoint_reported_not_crashed(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        victim_rank = 3
        victim_node = topo.accelerators[victim_rank]
        faults = FaultSet.from_nodes(topo, [victim_node])
        backend = FlowBackend(topo, max_paths=4, faults=faults)
        flows = random_permutation(topo.num_accelerators, seed=0)
        rates = backend.phase_rates(flows)
        dead = [
            i for i, f in enumerate(flows)
            if f.src == victim_rank or f.dst == victim_rank
        ]
        assert dead
        assert backend.disconnected_pairs == len(dead)
        assert (rates[dead] == 0.0).all()
        alive = np.ones(len(flows), dtype=bool)
        alive[dead] = False
        assert (rates[alive] > 0).all()

    def test_provider_raises_and_split_connected_reports(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        victim = topo.accelerators[0]
        other = topo.accelerators[1]
        faults = FaultSet.from_nodes(topo, [victim])
        provider = DegradedPathProvider(topo, faults)
        assert not provider.connected(other, victim)
        with pytest.raises(TopologyError, match="no surviving path"):
            provider.paths(other, victim)
        table = degraded_route_table(topo, faults, max_paths=4)
        ok, dead = split_connected(
            table, [(other, victim), (other, topo.accelerators[2])]
        )
        assert ok == [1] and dead == [0]

    def test_split_connected_trivial_on_fault_free_table(self, hx2mesh_4x4):
        table = route_table_for(hx2mesh_4x4, max_paths=4)
        ok, dead = split_connected(table, [(0, 1), (1, 2)])
        assert ok == [0, 1] and dead == []

    def test_valiant_detours_avoid_dead_links(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        faults = sample_link_faults(topo, 3, seed=2)
        flows = random_permutation(topo.num_accelerators, seed=1)
        solver = FaultEventSolver(topo, flows, policy="valiant", max_paths=4)
        solver.apply(faults)
        used = solver._state.asg.entry_link
        assert not np.isin(used, np.fromiter(faults.dead_links, dtype=np.int64)).any()


class TestFaultEventSolver:
    def _cold_rates(self, topo, flows, faults, policy="minimal"):
        table = degraded_route_table(topo, faults, max_paths=4, policy=policy)
        sim = FlowSimulator(topo, table=table)
        provider = sim.table.provider
        if isinstance(provider, DegradedPathProvider):
            active = [
                f for f in flows
                if provider.connected(sim.ranks[f.src], sim.ranks[f.dst])
            ]
        else:
            active = list(flows)
        return sim.maxmin_rates(active).flow_rates

    def test_schedule_replay_warm_and_exact(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        flows = random_permutation(topo.num_accelerators, seed=4)
        solver = FaultEventSolver(topo, flows, max_paths=4)
        schedule = link_fault_schedule(topo, 5, seed=4)
        reports = solver.apply_schedule(schedule)
        warm_steps = 0
        for fs, rep in zip(schedule, reports):
            cold = self._cold_rates(topo, flows, fs)
            assert np.allclose(
                np.sort(rep.connected_rates), np.sort(cold), atol=1e-9
            ), f"parity broke at {len(fs.dead_links) // 2} faults"
            warm_steps += rep.warm
        assert warm_steps >= len(schedule) - 1  # at most the first solve is cold

    def test_randomized_fault_sequences_match_cold(self, torus_4x4_boards):
        topo = torus_4x4_boards
        flows = random_permutation(topo.num_accelerators, seed=9)
        rng = np.random.default_rng(5)
        candidates = fault_candidate_links(topo, seed=7)
        solver = FaultEventSolver(topo, flows, max_paths=4)
        cumulative = FaultSet.empty()
        for _ in range(4):
            pick = [int(candidates[i]) for i in rng.choice(len(candidates), 2, replace=False)]
            cumulative = cumulative.union(FaultSet.from_links(topo, pick))
            rep = solver.apply(cumulative)
            cold = self._cold_rates(topo, flows, cumulative)
            assert np.allclose(np.sort(rep.connected_rates), np.sort(cold), atol=1e-9)

    def test_repair_resolves_cold_and_exact(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        flows = random_permutation(topo.num_accelerators, seed=4)
        solver = FaultEventSolver(topo, flows, max_paths=4)
        big = sample_link_faults(topo, 4, seed=4)
        small = sample_link_faults(topo, 2, seed=4)
        solver.apply(big)
        rep = solver.apply(small)  # repair: fault set shrinks
        assert not rep.warm
        cold = self._cold_rates(topo, flows, small)
        assert np.allclose(np.sort(rep.connected_rates), np.sort(cold), atol=1e-9)

    def test_disconnection_reported_with_zero_rates(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        flows = random_permutation(topo.num_accelerators, seed=4)
        solver = FaultEventSolver(topo, flows, max_paths=4)
        victim_rank = 5
        faults = FaultSet.from_nodes(topo, [topo.accelerators[victim_rank]])
        rep = solver.apply(faults)
        assert rep.disconnected
        assert all(
            flows[i].src == victim_rank or flows[i].dst == victim_rank
            for i in rep.disconnected
        )
        assert (rep.rates[list(rep.disconnected)] == 0.0).all()
        assert rep.min_rate > 0.0  # over the survivors

    def test_baseline_matches_fault_free_solve(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        flows = random_permutation(topo.num_accelerators, seed=4)
        solver = FaultEventSolver(topo, flows, max_paths=4)
        cold = FlowSimulator(topo, max_paths=4).maxmin_rates(flows).flow_rates
        assert np.allclose(solver.baseline.rates, cold, atol=1e-12)


class TestPacketFaults:
    def test_static_faults_through_packet_backend(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        faults = sample_link_faults(topo, 3, seed=1)
        backend = PacketBackend(topo, max_paths=4, faults=faults)
        flows = random_permutation(topo.num_accelerators, seed=0)[:16]
        rates = backend.phase_rates(flows)
        assert (rates > 0).all()

    def test_reference_impl_rejects_faults(self, hx2mesh_4x4):
        with pytest.raises(ValueError):
            PacketBackend(
                hx2mesh_4x4,
                impl="reference",
                faults=sample_link_faults(hx2mesh_4x4, 1, seed=0),
            )

    def test_mid_flight_link_death_retransmits(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        table = route_table_for(topo, max_paths=2)
        net = PacketNetwork(topo, config=PacketSimConfig(max_paths=2), table=table)
        msgs = [net.send(i, (i + 7) % len(net.ranks), 64 * 1024) for i in range(16)]
        # find the horizon, then replay with a fault dropped mid-flight
        horizon = net.run().finish_time
        net2 = PacketNetwork(topo, config=PacketSimConfig(max_paths=2), table=table)
        msgs2 = [net2.send(i, (i + 7) % len(net2.ranks), 64 * 1024) for i in range(16)]
        # kill two fabric cables at 30% of the fault-free makespan
        candidates = fault_candidate_links(topo, seed=0)
        net2.schedule_link_faults(0.3 * horizon, [candidates[0], candidates[1]])
        result = net2.run()
        assert all(m.finished for m in msgs2)
        assert result.packets_dropped == result.packets_retried
        assert result.packets_lost == 0
        assert result.finish_time >= horizon - 1e-12

    def test_disconnected_destination_counts_lost_packets(self, hx2mesh_4x4):
        topo = hx2mesh_4x4
        victim_rank = 2
        faults = FaultSet.from_nodes(topo, [topo.accelerators[victim_rank]])
        net = PacketNetwork(
            topo, config=PacketSimConfig(max_paths=2), faults=faults
        )
        msg = net.send(0, victim_rank, 4096)
        net.run()
        assert not msg.finished
        assert net.packets_lost > 0
