"""Tests for the capital-cost model (Table II / Appendix C)."""

import pytest

from repro.core.params import HxMeshParams, hx1mesh, hx2mesh, hx4mesh
from repro.cost import (
    DEFAULT_CATALOG,
    CostBreakdown,
    PriceCatalog,
    dragonfly_cost,
    fat_tree_cost,
    hammingmesh_cost,
    hyperx_cost,
    torus_cost,
)
from repro.topology import CableClass


class TestCatalog:
    def test_default_prices(self):
        assert DEFAULT_CATALOG.switch == 14_280
        assert DEFAULT_CATALOG.aoc_cable == 603
        assert DEFAULT_CATALOG.dac_cable == 272
        assert DEFAULT_CATALOG.pcb_trace == 0

    def test_cable_price_lookup(self):
        assert DEFAULT_CATALOG.cable_price(CableClass.AOC) == 603
        assert DEFAULT_CATALOG.cable_price(CableClass.DAC) == 272
        assert DEFAULT_CATALOG.cable_price(CableClass.PCB) == 0


class TestBreakdown:
    def test_totals(self):
        b = CostBreakdown("x", num_switches=2, num_dac=10, num_aoc=5)
        assert b.switch_cost == 2 * 14_280
        assert b.cable_cost == 10 * 272 + 5 * 603
        assert b.total == b.switch_cost + b.cable_cost
        assert b.total_millions == pytest.approx(b.total / 1e6)

    def test_scaled(self):
        b = CostBreakdown("x", 4, 8, 12).scaled(0.5)
        assert (b.num_switches, b.num_dac, b.num_aoc) == (2, 4, 6)


class TestTable2SmallCluster:
    """Reproduce the cost column of Table II (small, ~1k accelerators)."""

    @pytest.mark.parametrize(
        "breakdown,expected_millions",
        [
            (fat_tree_cost(1024), 25.3),
            (fat_tree_cost(1024, taper=0.5), 17.6),
            (fat_tree_cost(1024, taper=0.25), 13.2),
            (dragonfly_cost(8, 16, 8, 8, virtual_per_physical=2), 27.9),
            (hyperx_cost(32, 32), 10.8),
            (hammingmesh_cost(hx2mesh(16, 16)), 5.4),
            (hammingmesh_cost(hx4mesh(8, 8)), 2.7),
        ],
    )
    def test_matches_paper(self, breakdown, expected_millions):
        assert breakdown.total_millions == pytest.approx(expected_millions, rel=0.03)

    def test_torus_cost_uses_only_dac(self):
        b = torus_cost(16, 16)
        assert b.num_switches == 0
        assert b.num_aoc == 0
        # Appendix C counts 1,024 DAC cables per plane for the small torus.
        assert b.num_dac == 1024 * 4


class TestTable2LargeCluster:
    @pytest.mark.parametrize(
        "breakdown,expected_millions",
        [
            (fat_tree_cost(16384), 680),
            (fat_tree_cost(16384, taper=0.5), 419),
            (fat_tree_cost(16384, taper=0.25), 271),
            (dragonfly_cost(30, 32, 17, 16), 429),
            (hyperx_cost(128, 128), 448),
            (hammingmesh_cost(hx2mesh(64, 64)), 224),
            (hammingmesh_cost(hx4mesh(32, 32)), 43.3),
        ],
    )
    def test_matches_paper(self, breakdown, expected_millions):
        assert breakdown.total_millions == pytest.approx(expected_millions, rel=0.03)


class TestScalingBehaviour:
    def test_hxmesh_cheaper_than_fat_tree(self):
        assert hammingmesh_cost(hx2mesh(16, 16)).total < fat_tree_cost(1024).total
        assert hammingmesh_cost(hx4mesh(8, 8)).total < hammingmesh_cost(hx2mesh(16, 16)).total

    def test_tapering_reduces_cost_monotonically(self):
        costs = [fat_tree_cost(4096, taper=t).total for t in (1.0, 0.5, 0.25)]
        assert costs[0] > costs[1] > costs[2]

    def test_hxmesh_tapering_reduces_tree_cost(self):
        full = hammingmesh_cost(hx2mesh(64, 64))
        tapered = hammingmesh_cost(hx2mesh(64, 64, global_taper=0.5))
        assert tapered.total < full.total

    def test_single_switch_dimension_has_no_trunks(self):
        b = hammingmesh_cost(hx2mesh(16, 16))
        # all AoC cables are column endpoint cables (no inter-switch trunks)
        assert b.num_aoc == 2 * 2 * 16 * 16 * 4

    def test_1d_hxmesh(self):
        params = HxMeshParams(a=2, b=2, x=8, y=1)
        b = hammingmesh_cost(params)
        assert b.num_switches > 0
        assert b.total > 0

    def test_custom_catalog(self):
        catalog = PriceCatalog(switch=1.0, aoc_cable=1.0, dac_cable=1.0)
        b = fat_tree_cost(64, catalog=catalog)
        assert b.total == b.num_switches + b.num_dac + b.num_aoc

    def test_hx1mesh_cost_equals_hyperx_cost(self):
        assert hyperx_cost(32, 32).total == hammingmesh_cost(hx1mesh(32, 32)).total
