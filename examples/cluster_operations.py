#!/usr/bin/env python3
"""Operating a HammingMesh cluster: job allocation, failures, defragmentation.

Scenario: you run a 64x64 Hx2Mesh training cluster (4,096 boards, 16,384
accelerators).  Jobs arrive with sizes drawn from an MLaaS-like distribution,
boards fail over time, and you occasionally checkpoint/restart everything to
defragment.  This example shows how the allocation stack supports that
workflow and reports the utilization impact of each step.

Run with ``python examples/cluster_operations.py``.
"""

from __future__ import annotations

import numpy as np

from repro.allocation import (
    AllocatorOptions,
    BoardGrid,
    GreedyAllocator,
    sample_job_mixes,
    upper_level_fraction,
)

GRID_X = GRID_Y = 64
BOARDS = GRID_X * GRID_Y


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Fill the healthy cluster with a sampled job mix ----------------------
    grid = BoardGrid(GRID_X, GRID_Y)
    options = AllocatorOptions(transpose=True, aspect_ratio=True, locality=True,
                               boards_per_leaf=16)
    allocator = GreedyAllocator(grid, options)
    mix = sample_job_mixes(BOARDS, 1, seed=11)[0].sorted_by_size()
    result = allocator.allocate_trace(mix)
    print(f"initial fill: {len(result.placed)} jobs placed, "
          f"{len(result.rejected)} rejected, "
          f"utilization {result.utilization * 100:.1f}%")
    upper = np.mean([
        upper_level_fraction(sm, boards_per_leaf=16) for sm in result.placed.values()
    ])
    print(f"average share of job traffic crossing upper fat-tree levels: {upper * 100:.1f}%"
          " (this is why 2:1 tapering of the global trees is safe)")

    # 2. Boards fail while jobs come and go -----------------------------------
    # Finish and release a random half of the jobs, then fail some boards.
    finished = rng.choice(list(result.placed), size=len(result.placed) // 2, replace=False)
    for job_id in finished:
        grid.release(int(job_id))
    failed = grid.fail_random(60, seed=13)
    print(f"\nreleased {len(finished)} finished jobs, {len(failed)} boards failed")

    # 3. Keep allocating new jobs onto the fragmented cluster -----------------
    new_mix = sample_job_mixes(grid.num_free, 1, seed=17)[0]
    new_jobs = [j.__class__(j.job_id + 10_000, j.u, j.v) for j in new_mix]
    placed = 0
    for job in new_jobs:
        if allocator.allocate(job) is not None:
            placed += 1
    print(f"fragmented cluster: placed {placed}/{len(new_jobs)} new jobs, "
          f"utilization of working boards {grid.utilization() * 100:.1f}%")

    # 4. Defragment: checkpoint everything, restart in size order -------------
    # (The paper argues this takes < 1 s of network time for 64 GiB states.)
    running = [(job_id, grid.boards_of(job_id)) for job_id in grid.jobs()]
    sizes = {job_id: len(boards) for job_id, boards in running}
    grid.reset(keep_failures=True)
    defrag = GreedyAllocator(grid, options)
    from repro.allocation import JobRequest, most_square_shape

    placed_after = 0
    for job_id, boards in sorted(running, key=lambda kv: sizes[kv[0]], reverse=True):
        u, v = most_square_shape(sizes[job_id])
        if defrag.allocate(JobRequest(job_id, u, v)) is not None:
            placed_after += 1
    print(f"after defragmentation: {placed_after}/{len(running)} jobs re-placed, "
          f"utilization {grid.utilization() * 100:.1f}%")


if __name__ == "__main__":
    main()
