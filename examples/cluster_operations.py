#!/usr/bin/env python3
"""Operating a HammingMesh cluster over time with ``repro.cluster``.

Scenario: you run a 16x16 Hx2Mesh training cluster (256 boards, 1,024
accelerators).  Jobs arrive continuously with MLaaS-like sizes, run for
hours, and complete; boards fail and are repaired; the scheduler decides
who runs where.  This example drives the event-driven cluster lifetime
simulator end to end:

1. a baseline run with the paper's best allocator and backfilling;
2. the same trajectory under plain FCFS and under a weaker allocator,
   showing how both knobs move utilization and wait time;
3. a failure-heavy run comparing the requeue and shrink eviction policies;
4. service times derived from the DNN workload models (flow-simulator
   network profiles) instead of a statistical distribution.

Run with ``python examples/cluster_operations.py``.
"""

from __future__ import annotations

from repro.analysis import format_nested_table, lifetime_utilization_timeline
from repro.cluster import (
    ClusterSimConfig,
    ClusterSimulator,
    FailureModel,
    FlowSimServiceTime,
    LogNormalServiceTime,
)

GRID_X = GRID_Y = 16
SERVICE = LogNormalServiceTime(median_seconds=900.0, sigma=0.6)
FAILURES = FailureModel(mtbf_hours=80.0, mttr_hours=2.0)
NUM_JOBS = 600
SEED = 7


def describe(label: str, summary: dict) -> None:
    print(
        f"  {label:<42} util {summary['time_weighted_utilization'] * 100:5.1f}%  "
        f"busy-util {summary['busy_utilization'] * 100:5.1f}%  "
        f"wait {summary['mean_wait_time'] / 60:6.1f} min  "
        f"slowdown {summary['mean_slowdown']:5.2f}  "
        f"evictions {summary['evictions']:3.0f}"
    )


def main() -> None:
    # 1. Baseline: best allocator preset + backfilling, failures on --------
    print(f"{NUM_JOBS} jobs on a {GRID_X}x{GRID_Y} Hx2Mesh "
          f"(load 2.0, MTBF {FAILURES.mtbf_hours:g}h, MTTR {FAILURES.mttr_hours:g}h)\n")
    baseline = ClusterSimConfig(
        x=GRID_X, y=GRID_Y,
        allocator="greedy+transpose+aspect",
        policy="fcfs+backfill",
        num_jobs=NUM_JOBS, load=2.0, service=SERVICE, failures=FAILURES, seed=SEED,
    )
    report = ClusterSimulator(baseline).run()
    describe("greedy+transpose+aspect / fcfs+backfill", report.summary())

    # 2. Move the two knobs: scheduling policy and allocator quality -------
    for allocator, policy in (
        ("greedy+transpose+aspect", "fcfs"),
        ("greedy", "fcfs+backfill"),
        ("greedy", "fcfs"),
    ):
        config = ClusterSimConfig(
            x=GRID_X, y=GRID_Y, allocator=allocator, policy=policy,
            num_jobs=NUM_JOBS, load=2.0, service=SERVICE, failures=FAILURES, seed=SEED,
        )
        describe(f"{allocator} / {policy}", ClusterSimulator(config).run().summary())

    # 3. Heavy failures: requeue vs shrink eviction ------------------------
    print("\nfailure-heavy regime (MTBF 10h): eviction policy comparison")
    rows = {}
    for eviction in ("requeue", "shrink"):
        config = ClusterSimConfig(
            x=GRID_X, y=GRID_Y, num_jobs=NUM_JOBS, load=2.0, service=SERVICE,
            failures=FailureModel(mtbf_hours=10.0, mttr_hours=2.0, eviction=eviction),
            seed=SEED,
        )
        heavy = ClusterSimulator(config).run()
        summary = heavy.summary()
        rows[eviction] = {
            "utilization": summary["time_weighted_utilization"],
            "mean_slowdown": summary["mean_slowdown"],
            "p95_slowdown": summary["p95_slowdown"],
            "evictions": summary["evictions"],
            "shrinks": float(sum(job.shrinks for job in heavy.jobs)),
        }
    print(format_nested_table("", rows, value_format="{:.3g}"))

    # 4. Flow-simulator-derived service times ------------------------------
    # Iteration times of the paper's DNN workloads on the stored Hx2Mesh
    # network profile (measured with the flow-level simulator), times a
    # sampled iteration count, replace the statistical service model.
    from repro.analysis import network_profiles

    profile = network_profiles("small")["hx2mesh"]
    dnn_service = FlowSimServiceTime.from_profile(
        profile, ("resnet152", "gpt3", "cosmoflow"),
        iteration_range=(5_000, 50_000),
    )
    config = ClusterSimConfig(
        x=GRID_X, y=GRID_Y, num_jobs=NUM_JOBS, load=2.0,
        service=dnn_service, failures=FAILURES, seed=SEED,
    )
    report = ClusterSimulator(config).run()
    print("\nDNN-derived service times (ResNet-152 / GPT-3 / CosmoFlow iterations):")
    describe("greedy+transpose+aspect / fcfs+backfill", report.summary())

    # A figure-style timeline of the run (downsampled step function).
    timeline = lifetime_utilization_timeline(report, max_points=8)
    points = "  ".join(
        f"{t / 3600:5.1f}h:{u * 100:4.0f}%" for t, u in timeline["utilization"]
    )
    print(f"  utilization timeline  {points}")


if __name__ == "__main__":
    main()
