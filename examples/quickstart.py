#!/usr/bin/env python3
"""Quickstart: build a HammingMesh, inspect it, and measure its bandwidth.

This walks through the core public API in a few lines:

1. build a 16x16 Hx2Mesh (1,024 accelerators) and a fat tree of the same size,
2. look at structural properties (diameter, bisection, cost),
3. measure alltoall and allreduce bandwidth through a network backend
   selected by name (``"analytic"`` / ``"flow"`` / ``"packet"``),
4. run a small packet-level simulation for a latency estimate.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.core import build_hammingmesh, hx2mesh
from repro.cost import fat_tree_cost, hammingmesh_cost
from repro.sim import PacketNetwork, get_backend
from repro.topology import analytic_diameter, build_fat_tree, relative_bisection_bandwidth


def main() -> None:
    # 1. Build the topologies ------------------------------------------------
    hx = build_hammingmesh(2, 2, 16, 16)         # 16x16 Hx2Mesh
    ft = build_fat_tree(1024)                     # nonblocking fat tree
    print(f"built {hx.name}: {hx.num_accelerators} accelerators, "
          f"{hx.num_switches} switches, {hx.num_links} directed links")
    print(f"built {ft.name}: {ft.num_accelerators} accelerators, "
          f"{ft.num_switches} switches")

    # 2. Structural properties and capital cost ------------------------------
    print("\nstructure:")
    print(f"  HxMesh diameter {analytic_diameter(hx)} cables, "
          f"bisection {relative_bisection_bandwidth(hx):.2f} of injection")
    print(f"  fat tree diameter {analytic_diameter(ft)} cables")
    hx_cost = hammingmesh_cost(hx2mesh(16, 16))
    ft_cost = fat_tree_cost(1024)
    print(f"  HxMesh network cost  ${hx_cost.total_millions:6.1f}M "
          f"({hx_cost.num_switches} switches)")
    print(f"  fat tree network cost ${ft_cost.total_millions:6.1f}M "
          f"({ft_cost.num_switches} switches)")

    # 3. Bandwidth through a backend selected by name -------------------------
    # "analytic" (congestion-free), "flow" (max-min fair, Table II fidelity)
    # and "packet" (event-driven) answer the same questions; backends on one
    # topology share a memoized route table, so the allreduce measurement
    # reuses the alltoall measurement's routes.
    print("\nflow-level bandwidth (fractions of 1.6 Tb/s injection):")
    for name, topo in (("Hx2Mesh", hx), ("fat tree", ft)):
        model = get_backend("flow", topo, max_paths=8)
        a2a = model.alltoall_fraction(num_phases=24, seed=1)
        ar = model.allreduce_fraction()
        print(f"  {name:<10} alltoall {a2a * 100:5.1f}%   "
              f"allreduce {ar * 100:5.1f}% of the theoretical optimum")

    # 4. A tiny packet-level simulation ---------------------------------------
    small = build_hammingmesh(2, 2, 4, 4)
    net = PacketNetwork(small)
    msg = net.send(0, small.num_accelerators - 1, 1 << 20)   # 1 MiB corner to corner
    net.run()
    print(f"\npacket-level: 1 MiB across the {small.name} took "
          f"{msg.completion_time * 1e6:.1f} us "
          f"({msg.observed_bandwidth() / 1e9:.1f} GB/s)")


if __name__ == "__main__":
    main()
