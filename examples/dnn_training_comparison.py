#!/usr/bin/env python3
"""Choosing a training-cluster network for a given DNN workload mix.

For each of the paper's five workloads (ResNet-152, GPT-3, GPT-3 MoE,
CosmoFlow, DLRM), this example compares the eight Table-II topologies on
three axes: per-iteration time, exposed communication overhead, and network
cost per unit of training throughput.  It ends with the Figure-15-style
"relative cost savings" of the two HammingMesh variants.

Run with ``python examples/dnn_training_comparison.py``.
"""

from __future__ import annotations

from repro.analysis import (
    cluster_configs,
    dnn_iteration_times,
    fig15_cost_savings,
    format_nested_table,
    network_profiles,
)
from repro.workloads import get_workload


def main() -> None:
    profiles = network_profiles("small")
    configs = {c.key: c for c in cluster_configs("small")}

    # 1. Iteration times ------------------------------------------------------
    times = dnn_iteration_times(profiles=profiles)
    print(format_nested_table(
        "per-iteration time [ms]",
        {w: {t: v * 1000 for t, v in per.items()} for w, per in times.items()},
    ))

    # 2. Communication overhead ----------------------------------------------
    print()
    overheads = {}
    for name in ("resnet152", "gpt3", "gpt3_moe", "cosmoflow", "dlrm"):
        workload = get_workload(name)
        overheads[workload.name] = {
            configs[key].label: workload.communication_overhead(profile) * 100
            for key, profile in profiles.items()
        }
    print(format_nested_table("exposed communication overhead [%]", overheads,
                              value_format="{:.1f}"))

    # 3. Cost per unit of training throughput ---------------------------------
    print()
    cost_per_throughput = {}
    for wname, per_topo in times.items():
        cost_per_throughput[wname] = {}
        for key, profile in profiles.items():
            label = configs[key].label
            iterations_per_second = 1.0 / per_topo[label]
            cost_per_throughput[wname][label] = (
                configs[key].cost.total_millions / iterations_per_second
            )
    print(format_nested_table(
        "network cost per training throughput [$M / (iterations/s)]",
        cost_per_throughput,
    ))

    # 4. Figure-15-style savings ----------------------------------------------
    print()
    savings = fig15_cost_savings(profiles=profiles)
    for hx, per_workload in savings.items():
        print(format_nested_table(f"relative cost saving of {hx} (Figure 15)", per_workload))
        print()
    print("Reading: a value of 4.0 under 'nonblocking fat tree' means the HxMesh "
          "delivers the same training performance at one quarter of the network cost.")


if __name__ == "__main__":
    main()
