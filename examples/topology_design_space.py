#!/usr/bin/env python3
"""Exploring the HammingMesh design space: board size and global tapering.

Figure 1 of the paper sketches HammingMesh's bandwidth-cost-flexibility
trade-off: larger boards and more aggressive tapering reduce cost (and global
bandwidth), while the allreduce bandwidth that deep learning actually needs
stays at full rate.  This example quantifies that trade-off for a ~1k
accelerator machine by sweeping the board size (Hx1/Hx2/Hx4) and the global
tapering factor, reporting cost, alltoall bandwidth and allreduce bandwidth
for every design point.

Run with ``python examples/topology_design_space.py``.
"""

from __future__ import annotations

from repro.analysis import measure_allreduce_fraction, measure_alltoall_fraction
from repro.core import build_hammingmesh
from repro.core.params import HxMeshParams
from repro.cost import fat_tree_cost, hammingmesh_cost


def design_points():
    """(label, params) pairs covering board sizes 1, 2, 4 at ~1k accelerators."""
    yield "32x32 Hx1Mesh", HxMeshParams(a=1, b=1, x=32, y=32)
    yield "16x16 Hx2Mesh", HxMeshParams(a=2, b=2, x=16, y=16)
    yield "8x8   Hx4Mesh", HxMeshParams(a=4, b=4, x=8, y=8)


def main() -> None:
    reference = fat_tree_cost(1024)
    print(f"reference: nonblocking fat tree for 1,024 accelerators costs "
          f"${reference.total_millions:.1f}M\n")
    header = (f"{'design point':<18}{'taper':>7}{'cost[$M]':>10}{'vs FT':>8}"
              f"{'alltoall%':>11}{'allreduce%':>12}")
    print(header)
    print("-" * len(header))

    for label, params in design_points():
        for taper in (1.0, 0.5):
            p = params.with_taper(taper)
            cost = hammingmesh_cost(p)
            topo = build_hammingmesh(
                p.a, p.b, p.x, p.y, global_taper=p.global_taper
            )
            a2a = measure_alltoall_fraction(topo, num_phases=16, max_paths=8)
            ared = measure_allreduce_fraction(topo)
            print(
                f"{label:<18}{taper:>7.2f}{cost.total_millions:>10.2f}"
                f"{reference.total / cost.total:>7.1f}x"
                f"{a2a * 100:>11.1f}{ared * 100:>12.1f}"
            )
    print("\nTakeaway: growing the board from 1x1 to 4x4 cuts the network cost by "
          "another ~4x while the allreduce (deep-learning) bandwidth stays at full "
          "rate; only the rarely-needed global alltoall bandwidth shrinks.  Tapering "
          "the global trees is a second, orthogonal dial (it only changes cost when "
          "a dimension actually needs a multi-level tree).")


if __name__ == "__main__":
    main()
